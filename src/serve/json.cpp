#include "src/serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/analysis/diagnostics.hpp"
#include "src/support/parse_num.hpp"

namespace mph::serve {

namespace {

/// Deep enough for any sane request, small enough that a pathological
/// nesting chain cannot overflow the stack (the request line itself is
/// already length-capped by the daemon).
constexpr std::size_t kMaxDepth = 64;

}  // namespace

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::Bool;
  j.bool_ = b;
  return j;
}

Json Json::number(double d) {
  Json j;
  j.kind_ = Kind::Number;
  j.num_ = d;
  if (d >= 0 && d <= 18446744073709549568.0 && std::nearbyint(d) == d) {
    j.exact_u64_ = true;
    j.u64_ = static_cast<std::uint64_t>(d);
  }
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::String;
  j.str_ = std::move(s);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::Array;
  j.arr_ = std::move(items);
  return j;
}

Json Json::object(std::vector<std::pair<std::string, Json>> members) {
  Json j;
  j.kind_ = Kind::Object;
  j.obj_ = std::move(members);
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::Bool) throw std::invalid_argument("JSON value is not a boolean");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::Number) throw std::invalid_argument("JSON value is not a number");
  return num_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::String) throw std::invalid_argument("JSON value is not a string");
  return str_;
}

const std::vector<Json>& Json::as_array() const {
  if (kind_ != Kind::Array) throw std::invalid_argument("JSON value is not an array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::as_object() const {
  if (kind_ != Kind::Object) throw std::invalid_argument("JSON value is not an object");
  return obj_;
}

std::optional<std::uint64_t> Json::as_u64() const {
  if (kind_ != Kind::Number || !exact_u64_) return std::nullopt;
  return u64_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    skip_ws();
    Json value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after JSON document");
    return value;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at offset " + std::to_string(pos_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting deeper than the protocol allows");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Json::string(parse_string());
      case 't':
        if (consume_literal("true")) return Json::boolean(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json::boolean(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json::null();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object(std::size_t depth) {
    expect('{');
    std::vector<std::pair<std::string, Json>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json::object(std::move(members));
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json::object(std::move(members));
    }
  }

  Json parse_array(std::size_t depth) {
    expect('[');
    std::vector<Json> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json::array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json::array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail("raw control character in string (must be \\u-escaped)");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parse_hex4();
          // UTF-8 encode; surrogate pairs combine into one code point.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume_literal("\\u")) fail("unpaired high surrogate");
            unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else fail("non-hex digit in \\u escape");
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid value");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = true;
    if (peek() == '.') {
      integral = false;
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required after '.'");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("digits required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    const std::string_view literal = text_.substr(start, pos_ - start);
    Json j;
    j.kind_ = Json::Kind::Number;
    j.num_ = std::strtod(std::string(literal).c_str(), nullptr);
    // Exact-u64 flag only for plain integer literals that round-trip: this
    // is what lets budget caps reject "1e9"-style and fractional values.
    if (integral && literal[0] != '-') {
      if (auto v = parse_u64(literal)) {
        j.exact_u64_ = true;
        j.u64_ = *v;
      }
    }
    return j;
  }
};

Json Json::parse(std::string_view text) { return JsonParser(text).parse_document(); }

namespace {

void dump_to(const Json& j, std::string& out) {
  switch (j.kind()) {
    case Json::Kind::Null: out += "null"; break;
    case Json::Kind::Bool: out += j.as_bool() ? "true" : "false"; break;
    case Json::Kind::Number: {
      if (auto v = j.as_u64()) {
        out += std::to_string(*v);
        break;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", j.as_number());
      out += buf;
      break;
    }
    case Json::Kind::String:
      out += '"';
      out += analysis::json_escape(j.as_string());
      out += '"';
      break;
    case Json::Kind::Array: {
      out += '[';
      const auto& items = j.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += ", ";
        dump_to(items[i], out);
      }
      out += ']';
      break;
    }
    case Json::Kind::Object: {
      out += '{';
      const auto& members = j.as_object();
      for (std::size_t i = 0; i < members.size(); ++i) {
        if (i) out += ", ";
        out += '"';
        out += analysis::json_escape(members[i].first);
        out += "\": ";
        dump_to(members[i].second, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  dump_to(*this, out);
  return out;
}

JsonWriter& JsonWriter::field(std::string_view key, const Json& value) {
  members_.emplace_back(std::string(key), value);
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, std::string_view value) {
  members_.emplace_back(std::string(key), Json::string(std::string(value)));
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, const char* value) {
  return field(key, std::string_view(value));
}
JsonWriter& JsonWriter::field(std::string_view key, bool value) {
  members_.emplace_back(std::string(key), Json::boolean(value));
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, std::uint64_t value) {
  members_.emplace_back(std::string(key), Json::number(static_cast<double>(value)));
  return *this;
}
JsonWriter& JsonWriter::field(std::string_view key, double value) {
  members_.emplace_back(std::string(key), Json::number(value));
  return *this;
}
Json JsonWriter::build() { return Json::object(std::move(members_)); }

}  // namespace mph::serve
