// A minimal JSON value + recursive-descent parser for the mph-serve wire
// protocol (docs/SERVE.md). The daemon speaks line-delimited JSON, so the
// parser handles exactly RFC 8259 documents on one line: objects, arrays,
// strings (with \uXXXX escapes), numbers, true/false/null. No external
// dependency; writing goes through analysis::json_escape like every other
// JSON surface in the repo.
//
// Design constraints:
//   * Object member order is preserved (responses are diffed byte-for-byte
//     in tests) and lookup is linear — protocol objects are tiny.
//   * A depth cap bounds recursion, so a hostile request line cannot
//     overflow the daemon's stack (same guard family as the LTL parser).
//   * Numbers keep their double value plus an exact-u64 flag; budget caps
//     and thread counts reject non-integral or out-of-range numbers instead
//     of silently truncating (the CLI hardening sweep's contract).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mph::serve {

class Json {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double d);
  static Json string(std::string s);
  static Json array(std::vector<Json> items);
  static Json object(std::vector<std::pair<std::string, Json>> members);

  /// Parses one complete document; throws std::invalid_argument with a
  /// positioned message on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& as_array() const;
  const std::vector<std::pair<std::string, Json>>& as_object() const;

  /// Exact unsigned integer view of a Number: engaged iff the literal was a
  /// plain non-negative integer that fits in 64 bits ("3" yes; "3.5", "-1",
  /// "1e9" in exponent form, 2^64 no).
  std::optional<std::uint64_t> as_u64() const;

  /// Object member by key; nullptr when absent or when this is not an
  /// object. Linear scan, first match wins.
  const Json* find(std::string_view key) const;

  /// Serializes back to one line of JSON (keys in stored order, numbers via
  /// shortest round-trip formatting, strings through analysis::json_escape).
  std::string dump() const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0.0;
  bool exact_u64_ = false;
  std::uint64_t u64_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  friend class JsonParser;
};

/// Incremental builder for response objects: keeps the handler code flat.
class JsonWriter {
 public:
  JsonWriter& field(std::string_view key, const Json& value);
  JsonWriter& field(std::string_view key, std::string_view value);
  JsonWriter& field(std::string_view key, const char* value);
  JsonWriter& field(std::string_view key, bool value);
  JsonWriter& field(std::string_view key, std::uint64_t value);
  JsonWriter& field(std::string_view key, double value);
  Json build();

 private:
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace mph::serve
