#include "src/serve/replay_oracle.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/fuzz/generators.hpp"
#include "src/ltl/normalize.hpp"
#include "src/serve/server.hpp"

namespace mph::serve {

namespace {

using fuzz::CheckOutcome;
using fuzz::FuzzCase;

FuzzCase gen_serve_replay(Rng& rng) {
  FuzzCase c;
  c.oracle = "serve-replay";
  c.system = fuzz::random_fts(rng);
  std::vector<std::string> atoms;
  for (const auto& v : c.system->vars) {
    atoms.push_back(v.name + "hi");
    atoms.push_back(v.name + "lo");
  }
  const std::size_t n_specs = static_cast<std::size_t>(rng.between(1, 3));
  for (std::size_t i = 0; i < n_specs; ++i) {
    for (int tries = 0; tries < 20; ++tries) {
      ltl::Formula f =
          fuzz::random_ltl(rng, atoms, static_cast<std::size_t>(rng.between(3, 6)),
                           fuzz::LtlFlavor::FutureOnly);
      if (f.atoms().empty()) continue;
      c.formulas.push_back(f.to_string());
      break;
    }
  }
  if (c.formulas.empty()) return c;  // check() skips
  // Half the streams repeat a spec inside the batch, exercising the
  // same-batch dedup path on top of the ordinary hit/miss paths.
  if (rng.chance(1, 2)) c.formulas.push_back(c.formulas[0]);
  return c;
}

/// The same clamping Server::admit applies to a request without budget
/// fields — the reference side must run under the identical budget.
Budget admitted_budget(const ServerConfig& config, const Budget& budget) {
  Budget clamped = budget;
  std::size_t cap = config.max_budget_states;
  if (clamped.has_state_cap()) cap = std::min(cap, clamped.state_cap());
  clamped.with_state_cap(cap);
  return clamped;
}

CheckOutcome check_serve_replay(const FuzzCase& c, const Budget& budget) {
  if (!c.system || c.formulas.empty())
    return CheckOutcome::skip("needs a system and at least one spec");

  ServerConfig config;
  config.base_budget = budget;
  Server server(config);

  std::vector<Json> spec_values;
  for (const auto& text : c.formulas) spec_values.push_back(Json::string(text));
  const std::string line = JsonWriter()
                               .field("op", "check")
                               .field("model", fts_spec_to_json(*c.system))
                               .field("specs", Json::array(std::move(spec_values)))
                               .build()
                               .dump();

  Json cold = Json::parse(server.handle_line(line));
  const Json* ok = cold.find("ok");
  if (!ok || !ok->is_bool() || !ok->as_bool()) {
    const Json* error = cold.find("error");
    const Json* message = error ? error->find("message") : nullptr;
    return CheckOutcome::fail("daemon rejected a well-formed check request: " +
                              (message && message->is_string() ? message->as_string()
                                                               : cold.dump()));
  }
  const Json* results = cold.find("results");
  if (!results || !results->is_array() || results->as_array().size() != c.formulas.size())
    return CheckOutcome::fail("daemon returned " +
                              std::to_string(results && results->is_array()
                                                 ? results->as_array().size()
                                                 : 0) +
                              " results for " + std::to_string(c.formulas.size()) +
                              " specs");

  // The independent reference: the same batch straight through check_all
  // under the same admitted budget and the same (default) engine options.
  const fts::Fts sys = c.system->build();
  const fts::AtomMap atoms = c.system->atoms();
  std::vector<ltl::Formula> specs;
  for (const auto& text : c.formulas) specs.push_back(ltl::parse_formula(text));
  fts::CheckOptions options;
  options.budget = admitted_budget(config, budget);
  const std::vector<fts::CheckResult> direct = fts::check_all(sys, specs, atoms, options);

  auto has_v004 = [&](const Json& response) {
    const Json* diags = response.find("diagnostics");
    if (!diags || !diags->is_array()) return false;
    for (const auto& d : diags->as_array()) {
      const Json* code = d.find("code");
      if (code && code->is_string() && code->as_string() == "MPH-V004") return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < c.formulas.size(); ++i) {
    const Json& r = results->as_array()[i];
    const Json* outcome = r.find("outcome");
    const Json* verdict = r.find("verdict");
    if (!outcome || !outcome->is_string() || !verdict || !verdict->is_string())
      return CheckOutcome::fail("daemon result " + std::to_string(i) +
                                " is missing outcome/verdict fields");
    const bool daemon_complete = outcome->as_string() == "complete";
    if (!daemon_complete || !is_complete(direct[i].outcome)) {
      // Budget ran out on one side or the other — not a discrepancy, but
      // the daemon must still have answered a structured Unknown with the
      // MPH-V004 diagnostic, never a half-written response.
      if (!daemon_complete) {
        if (verdict->as_string() != "unknown")
          return CheckOutcome::fail("daemon reported a non-complete outcome with verdict '" +
                                    verdict->as_string() + "' instead of 'unknown'");
        if (!has_v004(cold))
          return CheckOutcome::fail(
              "daemon reported a budget-exhausted result without MPH-V004");
      }
      return CheckOutcome::exhausted("check budget exhausted (daemon " +
                                     outcome->as_string() + ", direct " +
                                     std::string(to_string(direct[i].outcome)) + ")");
    }
    const std::string expected = direct[i].holds ? "holds" : "violated";
    if (verdict->as_string() != expected)
      return CheckOutcome::fail("daemon and check_all disagree on '" + c.formulas[i] +
                                "': daemon " + verdict->as_string() + ", direct " +
                                expected);
    const bool daemon_cex = r.find("counterexample") != nullptr;
    if (daemon_cex != direct[i].counterexample.has_value())
      return CheckOutcome::fail("daemon and check_all disagree on counterexample "
                                "presence for '" +
                                c.formulas[i] + "'");
  }

  // Warm replay of the byte-identical request: every position must now be
  // served from the verdict cache (hit, or same-batch dedup) with the very
  // verdict the cold pass computed.
  Json warm = Json::parse(server.handle_line(line));
  const Json* warm_ok = warm.find("ok");
  if (!warm_ok || !warm_ok->is_bool() || !warm_ok->as_bool())
    return CheckOutcome::fail("daemon rejected the warm replay of a served request");
  const auto& warm_results = warm.find("results")->as_array();
  for (std::size_t i = 0; i < c.formulas.size(); ++i) {
    const Json& cold_r = results->as_array()[i];
    const Json& warm_r = warm_results[i];
    if (warm_r.find("verdict")->as_string() != cold_r.find("verdict")->as_string())
      return CheckOutcome::fail("warm-cache verdict differs from cold verdict for '" +
                                c.formulas[i] + "'");
    const std::string& source = warm_r.find("cache")->as_string();
    if (source != "hit")
      return CheckOutcome::fail("warm replay served position " + std::to_string(i) +
                                " from '" + source + "', expected 'hit'");
  }

  // Classify agreement: the daemon's memoized exact classification against
  // a fresh ltl::exact_classification under the same admitted budget.
  const std::string classify_line = JsonWriter()
                                        .field("op", "classify")
                                        .field("formula", c.formulas[0])
                                        .build()
                                        .dump();
  Json classified = Json::parse(server.handle_line(classify_line));
  if (const Json* cok = classified.find("ok"); cok && cok->as_bool()) {
    ltl::NormalizeOptions nopts;
    nopts.budget = admitted_budget(config, budget);
    const ltl::NormalizeResult nr = ltl::normalize(specs[0], nopts);
    const bool daemon_complete =
        classified.find("outcome")->as_string() == "complete";
    if (!daemon_complete || !is_complete(nr.outcome))
      return CheckOutcome::exhausted("classify budget exhausted");
    const auto exact = ltl::exact_classification(specs[0], nopts);
    // exact_classification re-runs normalization internally; if the shared
    // deadline expired anywhere between the daemon's classify and this
    // point, either side's "refusal" may be the budget biting rather than a
    // deterministic answer. Deadlines are monotonic, so one poll here
    // covers both directions of the race.
    if (!is_complete(nopts.budget.poll()))
      return CheckOutcome::exhausted("classify budget expired mid-comparison");
    const Json* daemon_exact = classified.find("exact");
    const bool daemon_has = daemon_exact && daemon_exact->is_string();
    if (daemon_has != exact.has_value())
      return CheckOutcome::fail(
          std::string("daemon and exact_classification disagree on classifiability "
                      "of '") +
          c.formulas[0] + "' (daemon " + (daemon_has ? "classified" : "refused") +
          ", direct " + (exact ? "classified" : "refused") + ")");
    if (exact && daemon_exact->as_string() != core::to_string(exact->value.lowest()))
      return CheckOutcome::fail("daemon classify reports '" + daemon_exact->as_string() +
                                "', exact_classification reports '" +
                                core::to_string(exact->value.lowest()) + "' for '" +
                                c.formulas[0] + "'");
  }

  return CheckOutcome::pass();
}

}  // namespace

fuzz::Oracle serve_replay_oracle() {
  return {"serve-replay",
          "mph-serve request engine (wire path, caches, admission) vs in-process "
          "check_all and exact_classification",
          gen_serve_replay, check_serve_replay};
}

void register_serve_oracle() { fuzz::register_oracle(serve_replay_oracle()); }

}  // namespace mph::serve
