// The serve-replay differential oracle: random request streams through the
// mph-serve request engine (Server::handle_line — the full wire path: JSON
// parse, admission, caches, response serialization) cross-checked against
// the in-process fts::check_all / ltl::exact_classification answers on the
// same inputs. Any verdict or diagnostic disagreement between the daemon
// path and the library path is a failure; a warm repeat of the same batch
// must be served entirely from the verdict cache with identical verdicts.
//
// The oracle lives in mph_serve (not mph_fuzz) because it drives the
// Server; it reaches the mph-fuzz CLI through fuzz::register_oracle (the
// extension point added for exactly this layering).
#pragma once

#include "src/fuzz/oracles.hpp"

namespace mph::serve {

/// The oracle value itself (exposed for tests).
fuzz::Oracle serve_replay_oracle();

/// Registers serve_replay_oracle() with the global fuzz registry. Safe to
/// call more than once (replaces by name).
void register_serve_oracle();

}  // namespace mph::serve
