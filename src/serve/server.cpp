#include "src/serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/analysis/absint.hpp"
#include "src/analysis/vacuity.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/normalize.hpp"

namespace mph::serve {

namespace {

using Clock = std::chrono::steady_clock;

int as_int(const Json& j, const char* what) {
  if (!j.is_number()) throw std::invalid_argument(std::string(what) + " must be a number");
  double d = j.as_number();
  if (std::nearbyint(d) != d || d < -2147483648.0 || d > 2147483647.0)
    throw std::invalid_argument(std::string(what) + " must be an integer");
  return static_cast<int>(d);
}

std::uint64_t as_u64_field(const Json& j, const char* what) {
  auto v = j.as_u64();
  if (!v)
    throw std::invalid_argument(std::string(what) +
                                " must be a non-negative integer");
  return *v;
}

const std::string& as_string_field(const Json& j, const char* what) {
  if (!j.is_string()) throw std::invalid_argument(std::string(what) + " must be a string");
  return j.as_string();
}

Json error_body(std::string_view code, std::string_view message) {
  return JsonWriter().field("code", code).field("message", message).build();
}

Json diagnostics_json(const analysis::DiagnosticEngine& engine) {
  std::vector<Json> items;
  for (const auto& d : engine.diagnostics()) {
    JsonWriter w;
    w.field("code", d.code)
        .field("severity", analysis::to_string(d.severity))
        .field("subject", d.subject)
        .field("message", d.message);
    items.push_back(std::move(w).build());
  }
  return Json::array(std::move(items));
}

}  // namespace

void EndpointMetrics::record(double us, std::size_t cap) {
  if (cap == 0) return;
  if (latency_us.size() < cap) {
    latency_us.push_back(us);
  } else {
    if (latency_next >= latency_us.size()) latency_next = 0;  // cap shrank
    latency_us[latency_next] = us;
  }
  latency_next = (latency_next + 1) % cap;
}

double EndpointMetrics::percentile(double q) const {
  if (latency_us.empty()) return 0.0;
  std::vector<double> sorted = latency_us;
  std::sort(sorted.begin(), sorted.end());
  // Nearest rank: the ⌈q·n⌉-th smallest, 1-indexed. The old q·n truncation
  // sat one rank high (p50 of {1, 2} reported 2).
  const double rank = std::ceil(q * static_cast<double>(sorted.size()));
  std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

fuzz::FtsSpec fts_spec_from_json(const Json& model) {
  if (!model.is_object()) throw std::invalid_argument("inline model must be an object");
  fuzz::FtsSpec spec;
  const Json* vars = model.find("vars");
  if (!vars || !vars->is_array() || vars->as_array().empty())
    throw std::invalid_argument("inline model needs a non-empty 'vars' array");
  for (const auto& v : vars->as_array()) {
    const Json* name = v.find("name");
    if (!name) throw std::invalid_argument("model var needs a 'name'");
    fuzz::FtsSpec::Var var;
    var.name = as_string_field(*name, "var name");
    if (const Json* lo = v.find("lo")) var.lo = as_int(*lo, "var lo");
    if (const Json* hi = v.find("hi")) var.hi = as_int(*hi, "var hi");
    if (const Json* init = v.find("init")) var.init = as_int(*init, "var init");
    if (var.hi < var.lo || var.init < var.lo || var.init > var.hi)
      throw std::invalid_argument("model var '" + var.name + "' has an empty domain "
                                  "or an out-of-domain initial value");
    for (const auto& earlier : spec.vars)
      if (earlier.name == var.name)
        throw std::invalid_argument("duplicate model var name '" + var.name +
                                    "' — atom bindings would be ambiguous");
    spec.vars.push_back(std::move(var));
  }
  const Json* transitions = model.find("transitions");
  if (!transitions || !transitions->is_array())
    throw std::invalid_argument("inline model needs a 'transitions' array");
  for (const auto& t : transitions->as_array()) {
    fuzz::FtsSpec::Trans trans;
    if (const Json* name = t.find("name"))
      trans.name = as_string_field(*name, "transition name");
    if (const Json* fair = t.find("fairness")) {
      const std::string& f = as_string_field(*fair, "fairness");
      if (f == "none") trans.fairness = fts::Fairness::None;
      else if (f == "weak") trans.fairness = fts::Fairness::Weak;
      else if (f == "strong") trans.fairness = fts::Fairness::Strong;
      else throw std::invalid_argument("fairness must be none/weak/strong");
    }
    if (const Json* guard = t.find("guard")) {
      for (const auto& g : guard->as_array()) {
        fuzz::FtsSpec::Cmp cmp;
        if (const Json* var = g.find("var"))
          cmp.var = as_u64_field(*var, "guard var index");
        if (const Json* op = g.find("op")) cmp.op = as_int(*op, "guard op");
        if (const Json* rhs = g.find("rhs")) cmp.rhs = as_int(*rhs, "guard rhs");
        if (cmp.var >= spec.vars.size())
          throw std::invalid_argument("guard var index out of range");
        if (cmp.op < 0 || cmp.op > 2)
          throw std::invalid_argument("guard op must be 0 (<=), 1 (>=) or 2 (==)");
        // A guard no domain value can satisfy makes the transition dead by
        // construction — reject it up front as a bad request instead of
        // accepting a model that silently never fires it (the in-domain
        // dead-transition case is a lint finding, MPH-F010, not an error).
        const auto& dom = spec.vars[cmp.var];
        const bool unsatisfiable = (cmp.op == 0 && cmp.rhs < dom.lo) ||
                                   (cmp.op == 1 && cmp.rhs > dom.hi) ||
                                   (cmp.op == 2 && (cmp.rhs < dom.lo || cmp.rhs > dom.hi));
        if (unsatisfiable)
          throw std::invalid_argument(
              "guard on var '" + dom.name + "' is unsatisfiable: op " +
              std::to_string(cmp.op) + " rhs " + std::to_string(cmp.rhs) +
              " admits no value of domain [" + std::to_string(dom.lo) + ", " +
              std::to_string(dom.hi) + "]");
        trans.guard.push_back(cmp);
      }
    }
    if (const Json* effects = t.find("effects")) {
      for (const auto& e : effects->as_array()) {
        fuzz::FtsSpec::Eff eff;
        if (const Json* var = e.find("var"))
          eff.var = as_u64_field(*var, "effect var index");
        if (const Json* src = e.find("src"))
          eff.src = as_u64_field(*src, "effect src index");
        if (const Json* add = e.find("add")) eff.add = as_int(*add, "effect add");
        if (eff.var >= spec.vars.size() || eff.src >= spec.vars.size())
          throw std::invalid_argument("effect var index out of range");
        trans.effects.push_back(eff);
      }
    }
    spec.transitions.push_back(std::move(trans));
  }
  return spec;
}

Json fts_spec_to_json(const fuzz::FtsSpec& spec) {
  std::vector<Json> vars;
  for (const auto& v : spec.vars) {
    vars.push_back(JsonWriter()
                       .field("name", v.name)
                       .field("lo", static_cast<double>(v.lo))
                       .field("hi", static_cast<double>(v.hi))
                       .field("init", static_cast<double>(v.init))
                       .build());
  }
  std::vector<Json> transitions;
  for (const auto& t : spec.transitions) {
    const char* fairness = t.fairness == fts::Fairness::Weak     ? "weak"
                           : t.fairness == fts::Fairness::Strong ? "strong"
                                                                 : "none";
    std::vector<Json> guard;
    for (const auto& g : t.guard)
      guard.push_back(JsonWriter()
                          .field("var", static_cast<std::uint64_t>(g.var))
                          .field("op", static_cast<double>(g.op))
                          .field("rhs", static_cast<double>(g.rhs))
                          .build());
    std::vector<Json> effects;
    for (const auto& e : t.effects)
      effects.push_back(JsonWriter()
                            .field("var", static_cast<std::uint64_t>(e.var))
                            .field("src", static_cast<std::uint64_t>(e.src))
                            .field("add", static_cast<double>(e.add))
                            .build());
    transitions.push_back(JsonWriter()
                              .field("name", t.name)
                              .field("fairness", fairness)
                              .field("guard", Json::array(std::move(guard)))
                              .field("effects", Json::array(std::move(effects)))
                              .build());
  }
  return JsonWriter()
      .field("vars", Json::array(std::move(vars)))
      .field("transitions", Json::array(std::move(transitions)))
      .build();
}

ResolvedModel resolve_model(const Json& model) {
  if (model.is_string()) {
    const std::string& name = model.as_string();
    auto from = [&](fts::programs::Program program) {
      return ResolvedModel{std::move(program.system), std::move(program.atoms),
                           builtin_model_digest(name), name};
    };
    if (name == "peterson") return from(fts::programs::peterson());
    if (name == "trivial-mutex") return from(fts::programs::trivial_mutex());
    if (name == "semaphore-weak")
      return from(fts::programs::semaphore_mutex(3, fts::Fairness::Weak));
    if (name == "semaphore-strong")
      return from(fts::programs::semaphore_mutex(3, fts::Fairness::Strong));
    if (name == "producer-consumer") return from(fts::programs::producer_consumer(3));
    auto family = [&](std::string_view prefix) -> std::optional<std::size_t> {
      if (name.size() <= prefix.size() ||
          name.compare(0, prefix.size(), prefix) != 0)
        return std::nullopt;
      const std::string digits = name.substr(prefix.size());
      if (digits.find_first_not_of("0123456789") != std::string::npos ||
          digits.empty() || digits.size() > 3)
        return std::nullopt;
      return static_cast<std::size_t>(std::stoul(digits));
    };
    if (auto n = family("dining-")) return from(fts::programs::dining(*n));
    if (auto n = family("ring-")) return from(fts::programs::ring_leader(*n));
    throw std::invalid_argument("unknown model '" + name + "'");
  }
  fuzz::FtsSpec spec = fts_spec_from_json(model);
  ResolvedModel resolved{spec.build(), spec.atoms(), model_digest(spec), "(inline)"};
  resolved.spec = std::move(spec);
  return resolved;
}

Server::Server(ServerConfig config) : config_(std::move(config)) {}

Budget Server::admit(const Json& request) const {
  Budget budget = config_.base_budget;

  std::size_t cap = config_.max_budget_states;
  if (const Json* states = request.find("budget_states"))
    cap = std::min<std::size_t>(cap, as_u64_field(*states, "budget_states"));
  if (budget.has_state_cap()) cap = std::min(cap, budget.state_cap());
  budget.with_state_cap(cap);

  std::optional<std::uint64_t> allowance_ms;
  if (const Json* ms = request.find("budget_ms"))
    allowance_ms = as_u64_field(*ms, "budget_ms");
  if (config_.max_budget_ms > 0)
    allowance_ms = allowance_ms ? std::min(*allowance_ms, config_.max_budget_ms)
                                : config_.max_budget_ms;
  if (allowance_ms) {
    Budget::Clock::time_point when =
        Budget::Clock::now() + std::chrono::milliseconds(*allowance_ms);
    if (budget.deadline() && *budget.deadline() < when) when = *budget.deadline();
    budget.with_deadline(when);
  }
  return budget;
}

fts::CheckOptions Server::check_options(const Json& request, const Budget& budget) const {
  fts::CheckOptions options;
  options.budget = budget;
  if (const Json* threads = request.find("threads"))
    options.threads = static_cast<unsigned>(std::min<std::uint64_t>(
        std::max<std::uint64_t>(as_u64_field(*threads, "threads"), 1),
        config_.max_threads));
  if (const Json* explore = request.find("explore_threads"))
    options.explore_threads = static_cast<unsigned>(std::min<std::uint64_t>(
        std::max<std::uint64_t>(as_u64_field(*explore, "explore_threads"), 1),
        config_.max_threads));
  if (const Json* force = request.find("force_scc")) options.force_scc = force->as_bool();
  if (const Json* dispatch = request.find("class_dispatch"))
    options.class_dispatch = dispatch->as_bool();
  if (const Json* steps = request.find("normalize_steps"))
    options.normalize_steps = as_u64_field(*steps, "normalize_steps");
  return options;
}

analysis::Implication Server::implied(std::uint64_t stronger, std::uint64_t weaker) {
  const auto key = std::make_pair(stronger, weaker);
  if (auto it = implications_.find(key); it != implications_.end()) return it->second;
  // States-only server budget: with no deadline in play all three answers
  // (including Unknown) are deterministic, so the memo never lies to a
  // later, different request.
  analysis::SubsumeOptions sopts;
  sopts.budget = Budget().with_state_cap(config_.subsume_states);
  ++implication_checks_;
  const analysis::Implication v = analysis::implies(formulas_.find(stronger)->formula,
                                                    formulas_.find(weaker)->formula, sopts);
  implications_.emplace(key, v);
  return v;
}

std::string Server::handle_line(const std::string& line) {
  try {
    return handle(Json::parse(line)).dump();
  } catch (const std::invalid_argument& e) {
    // The request never parsed: no id to echo, no op to account it under.
    auto& m = endpoints_["invalid"];
    ++m.count;
    ++m.errors;
    ++requests_;
    return JsonWriter()
        .field("ok", false)
        .field("error", error_body("bad-json", e.what()))
        .build()
        .dump();
  }
}

Json Server::handle(const Json& request) {
  const Clock::time_point started = Clock::now();
  std::string op = "invalid";
  if (const Json* op_field = request.find("op"); op_field && op_field->is_string())
    op = op_field->as_string();

  Json response = dispatch(request);

  // Echo the request id (any JSON value) ahead of the payload.
  if (const Json* id = request.find("id")) {
    std::vector<std::pair<std::string, Json>> members;
    members.emplace_back("id", *id);
    for (const auto& member : response.as_object()) members.push_back(member);
    response = Json::object(std::move(members));
  }

  const bool ok = [&] {
    const Json* flag = response.find("ok");
    return flag && flag->is_bool() && flag->as_bool();
  }();
  auto& metrics = endpoints_[op];
  ++metrics.count;
  if (!ok) ++metrics.errors;
  ++requests_;
  metrics.record(
      std::chrono::duration<double, std::micro>(Clock::now() - started).count(),
      config_.max_latency_samples);
  return response;
}

Json Server::dispatch(const Json& request) {
  const Json* op_field = request.find("op");
  if (!op_field || !op_field->is_string())
    return JsonWriter()
        .field("ok", false)
        .field("error", error_body("bad-request", "request needs a string 'op'"))
        .build();
  const std::string& op = op_field->as_string();
  try {
    if (op == "parse") return handle_parse(request);
    if (op == "classify") return handle_classify(request);
    if (op == "check") return handle_check(request);
    if (op == "vacuity") return handle_vacuity(request);
    if (op == "invalidate") return handle_invalidate(request);
    if (op == "stats")
      return JsonWriter().field("ok", true).field("op", "stats").field(
          "stats", stats_json()).build();
    return JsonWriter()
        .field("ok", false)
        .field("error", error_body("bad-request", "unknown op '" + op + "'"))
        .build();
  } catch (const std::invalid_argument& e) {
    return JsonWriter()
        .field("ok", false)
        .field("op", op)
        .field("error", error_body("bad-request", e.what()))
        .build();
  } catch (const std::exception& e) {
    return JsonWriter()
        .field("ok", false)
        .field("op", op)
        .field("error", error_body("internal", e.what()))
        .build();
  }
}

Json Server::handle_parse(const Json& request) {
  const Json* formula = request.find("formula");
  if (!formula) throw std::invalid_argument("parse needs a 'formula'");
  bool hit = false;
  const std::uint64_t digest =
      formulas_.intern(as_string_field(*formula, "formula"), hit);
  const FormulaArtifacts& art = *formulas_.find(digest);
  std::vector<Json> atoms;
  for (const auto& a : art.atoms) atoms.push_back(Json::string(a));
  return JsonWriter()
      .field("ok", true)
      .field("op", "parse")
      .field("digest", digest_hex(digest))
      .field("canonical", art.canonical)
      .field("atoms", Json::array(std::move(atoms)))
      .field("size", static_cast<std::uint64_t>(art.formula.size()))
      .field("syntactic", core::to_string(art.syntactic.lowest()))
      .field("liveness", art.syntactic.liveness)
      .field("cache", hit ? "hit" : "miss")
      .build();
}

Json Server::handle_classify(const Json& request) {
  const Json* formula = request.find("formula");
  if (!formula) throw std::invalid_argument("classify needs a 'formula'");
  bool interned = false;
  const std::uint64_t digest =
      formulas_.intern(as_string_field(*formula, "formula"), interned);
  FormulaArtifacts& art = *formulas_.find(digest);

  bool hit = art.classified;
  if (!art.classified) {
    const Budget budget = admit(request);
    ltl::NormalizeOptions nopts;
    nopts.budget = budget;
    if (const Json* steps = request.find("normalize_steps"))
      nopts.budget.with_state_cap(std::min<std::size_t>(
          budget.state_cap(), as_u64_field(*steps, "normalize_steps")));
    const ltl::NormalizeResult nr = ltl::normalize(art.formula, nopts);
    art.normalize_outcome = std::string(to_string(nr.outcome));
    art.normalize_steps = nr.steps;
    if (nr.complete()) art.normal_form = nr.form.to_string();
    // exact_classification re-runs the rewrite and, on refusal, falls back
    // to the NBA closure tests (docs/COMPLEMENT.md) — so even a
    // budget-stopped normalization may still yield an exact class.
    if (auto exact = ltl::exact_classification(art.formula, nopts)) {
      art.exact_class = core::to_string(exact->value.lowest());
      art.exact_source = exact->source == ltl::ExactClass::Source::NbaSemantics
                             ? "nba"
                             : "normal-form";
      if (exact->source == ltl::ExactClass::Source::NormalForm) {
        // The normal-form automaton is the cached compile artifact: its
        // size is what repeated classify requests stop re-paying. The NBA
        // path compiles nothing deterministic, so it reports no size.
        std::vector<std::string> names = art.atoms;
        for (const auto& a : exact->normal_form.atoms())
          if (std::find(names.begin(), names.end(), a) == names.end())
            names.push_back(a);
        if (names.empty()) names.push_back("p");
        if (names.size() <= nopts.max_atoms) {
          lang::Alphabet alphabet = lang::Alphabet::of_props(names);
          if (auto m = ltl::compile_hierarchy_form(exact->normal_form, alphabet))
            art.automaton_states = m->state_count();
        }
      }
    }
    // An established class is deterministic content, and so is a genuine
    // refusal with the whole budget still live (atom blow-up, both exact
    // paths out of envelope). A refusal with the deadline already spent may
    // just be the budget biting between legs — only a better-funded retry
    // can tell, so leave that unmemoized.
    if (art.exact_class || (is_complete(nr.outcome) && is_complete(nopts.budget.poll())))
      art.classified = true;
  }

  JsonWriter w;
  w.field("ok", true)
      .field("op", "classify")
      .field("digest", digest_hex(digest))
      .field("canonical", art.canonical)
      .field("syntactic", core::to_string(art.syntactic.lowest()));
  if (art.exact_class)
    w.field("exact", *art.exact_class);
  else
    w.field("exact", Json::null());
  if (art.exact_source) w.field("exact_source", *art.exact_source);
  if (art.normal_form) w.field("normal_form", *art.normal_form);
  w.field("outcome", art.normalize_outcome)
      .field("steps", art.normalize_steps)
      .field("automaton_states", art.automaton_states)
      .field("cache", hit ? "hit" : "miss");
  return std::move(w).build();
}

Json Server::handle_check(const Json& request) {
  const Json* model_field = request.find("model");
  if (!model_field) throw std::invalid_argument("check needs a 'model'");
  const Json* specs_field = request.find("specs");
  if (!specs_field || !specs_field->is_array() || specs_field->as_array().empty())
    throw std::invalid_argument("check needs a non-empty 'specs' array");

  ResolvedModel model = resolve_model(*model_field);
  const Budget budget = admit(request);
  fts::CheckOptions options = check_options(request, budget);
  // Inline models carry their symbolic description: consult the interval
  // static prover before exploring. Verdicts it certifies report (and cache)
  // engine "static" with 0 product states. The hook does not enter the
  // options digest — it is a pure function of the model, which already keys
  // the verdict cache.
  if (model.spec) options.static_prover = analysis::make_static_prover(*model.spec);
  const std::uint64_t odigest = options_digest(options);
  bool use_cache = config_.cache;
  if (const Json* no_cache = request.find("no_cache"))
    use_cache = use_cache && !no_cache->as_bool();

  const auto& spec_values = specs_field->as_array();
  struct Position {
    std::string text;
    std::uint64_t digest = 0;
    const VerdictEntry* cached = nullptr;
    std::size_t miss_index = 0;  ///< into the check_all batch
    bool dedup = false;          ///< duplicate of an earlier miss in this batch
    /// Verdict derived from another spec's cached entry via language
    /// inclusion (cache:"subsume"); `via` is the donor's spec digest.
    std::optional<VerdictEntry> derived;
    std::uint64_t via = 0;
  };
  std::vector<Position> positions;
  std::vector<ltl::Formula> miss_formulas;
  std::vector<std::string> miss_texts;
  std::map<std::uint64_t, std::size_t> pending;  // spec digest → miss index
  std::uint64_t hits = 0, misses = 0, dedups = 0, subsumed = 0;

  for (const auto& value : spec_values) {
    Position p;
    p.text = as_string_field(value, "spec");
    bool interned = false;
    p.digest = formulas_.intern(p.text, interned);
    if (auto it = pending.find(p.digest); it != pending.end()) {
      p.dedup = true;
      p.miss_index = it->second;
      ++dedups;
      ++batch_dedups_;
      positions.push_back(std::move(p));
      continue;
    }
    if (use_cache) {
      p.cached = verdicts_.find({model.digest, p.digest, odigest});
      if (p.cached) {
        ++hits;
        positions.push_back(std::move(p));
        continue;
      }
      if (config_.subsume_sharing) {
        // Cross-spec sharing: a cached donor ψ that holds and implies this
        // spec φ proves φ holds; a violated donor ψ with φ ⇒ ψ has a
        // counterexample computation outside L(ψ) ⊇ L(φ), so φ is violated
        // by the same computation. Both directions are sound; Unknown
        // implications derive nothing.
        std::size_t scanned = 0;
        for (const auto& [donor, entry] : verdicts_.entries_for(model.digest, odigest)) {
          if (scanned++ >= config_.subsume_max_candidates) break;
          const bool transfers =
              entry->holds ? implied(donor, p.digest) == analysis::Implication::Implies
                           : implied(p.digest, donor) == analysis::Implication::Implies;
          if (!transfers) continue;
          p.derived = *entry;
          p.via = donor;
          break;
        }
        if (p.derived) {
          ++subsumed;
          ++subsume_hits_;
          positions.push_back(std::move(p));
          continue;
        }
      }
    }
    ++misses;
    p.miss_index = miss_formulas.size();
    pending.emplace(p.digest, p.miss_index);
    miss_formulas.push_back(formulas_.find(p.digest)->formula);
    miss_texts.push_back(p.text);
    positions.push_back(std::move(p));
  }

  // The deadline-between-legs gate (docs/SERVE.md, the PR 7 pattern): all
  // specs are parsed and admitted by now; if the deadline has already
  // passed, answer a structured budget-deadline Unknown for every
  // yet-uncomputed spec instead of entering the engines with an expired
  // budget mid-flight.
  analysis::DiagnosticEngine diagnostics;
  std::vector<fts::CheckResult> computed;
  const Outcome gate = miss_formulas.empty() ? Outcome::Complete : budget.poll();
  if (!is_complete(gate)) {
    for (const auto& text : miss_texts) {
      fts::CheckResult r;
      r.holds = false;
      r.outcome = gate;
      r.stats.outcome = gate;
      computed.push_back(std::move(r));
      diagnostics.emit("MPH-V004", "spec '" + text + "'",
                       "request budget expired before the check leg started; "
                       "verdict unknown");
    }
  } else if (!miss_formulas.empty()) {
    options.diagnostics = &diagnostics;
    computed = fts::check_all(model.system, miss_formulas, model.atoms, options);
  }

  std::vector<Json> results;
  for (const auto& p : positions) {
    const FormulaArtifacts& art = *formulas_.find(p.digest);
    JsonWriter w;
    w.field("spec", p.text)
        .field("canonical", art.canonical)
        .field("digest", digest_hex(p.digest));
    if (p.cached || p.derived) {
      const VerdictEntry& entry = p.cached ? *p.cached : *p.derived;
      w.field("verdict", entry.holds ? "holds" : "violated")
          .field("outcome", to_string(entry.stats.outcome))
          .field("cache", p.cached ? "hit" : "subsume");
      // The stats of a subsume-derived row are the donor's: they are the
      // evidence the verdict transferred from.
      if (p.derived) w.field("via", digest_hex(p.via));
      w.field("engine", to_string(entry.stats.engine))
          .field("class_source", to_string(entry.stats.class_source))
          .field("product_states",
                 static_cast<std::uint64_t>(entry.stats.product_states))
          .field("automaton_states",
                 static_cast<std::uint64_t>(entry.stats.automaton_states))
          .field("threads_used", static_cast<std::uint64_t>(entry.stats.threads_used));
      if (entry.has_counterexample)
        w.field("counterexample", JsonWriter()
                                      .field("prefix", entry.cex_prefix)
                                      .field("loop", entry.cex_loop)
                                      .build());
    } else {
      const fts::CheckResult& r = computed.at(p.miss_index);
      const bool complete = is_complete(r.outcome);
      w.field("verdict", !complete ? "unknown" : r.holds ? "holds" : "violated")
          .field("outcome", to_string(r.outcome))
          .field("cache", p.dedup ? "dedup" : "miss")
          .field("engine", to_string(r.stats.engine))
          .field("class_source", to_string(r.stats.class_source))
          .field("product_states", static_cast<std::uint64_t>(r.stats.product_states))
          .field("automaton_states",
                 static_cast<std::uint64_t>(r.stats.automaton_states))
          .field("threads_used", static_cast<std::uint64_t>(r.stats.threads_used));
      if (r.counterexample)
        w.field("counterexample",
                JsonWriter()
                    .field("prefix",
                           static_cast<std::uint64_t>(r.counterexample->prefix.size()))
                    .field("loop",
                           static_cast<std::uint64_t>(r.counterexample->loop.size()))
                    .build());
    }
    results.push_back(std::move(w).build());
  }

  // Populate the cache once per unique miss (duplicate positions share the
  // single entry — serve_test pins this) and account exhaustions.
  std::set<std::uint64_t> stored;
  for (const auto& p : positions) {
    if (p.cached || p.derived) continue;
    if (!stored.insert(p.digest).second) continue;
    const fts::CheckResult& r = computed.at(p.miss_index);
    if (!is_complete(r.outcome)) {
      ++budget_exhaustions_;
      continue;
    }
    if (!use_cache) continue;
    VerdictEntry entry;
    entry.holds = r.holds;
    entry.stats = r.stats;
    if (r.counterexample) {
      entry.has_counterexample = true;
      entry.cex_prefix = r.counterexample->prefix.size();
      entry.cex_loop = r.counterexample->loop.size();
    }
    verdicts_.put({model.digest, p.digest, odigest}, entry);
  }

  return JsonWriter()
      .field("ok", true)
      .field("op", "check")
      .field("model", model.label)
      .field("model_digest", digest_hex(model.digest))
      .field("options_digest", digest_hex(odigest))
      .field("results", Json::array(std::move(results)))
      .field("cache", JsonWriter()
                          .field("hits", hits)
                          .field("misses", misses)
                          .field("dedup", dedups)
                          .field("subsume", subsumed)
                          .build())
      .field("diagnostics", diagnostics_json(diagnostics))
      .build();
}

Json Server::handle_vacuity(const Json& request) {
  const Json* model_field = request.find("model");
  if (!model_field) throw std::invalid_argument("vacuity needs a 'model'");
  const Json* specs_field = request.find("specs");
  if (!specs_field || !specs_field->is_array() || specs_field->as_array().empty())
    throw std::invalid_argument("vacuity needs a non-empty 'specs' array");

  ResolvedModel model = resolve_model(*model_field);
  const Budget budget = admit(request);

  std::vector<std::string> texts;
  std::vector<ltl::Formula> requirements;
  for (const auto& value : specs_field->as_array()) {
    bool interned = false;
    const std::uint64_t digest =
        formulas_.intern(as_string_field(value, "spec"), interned);
    texts.push_back(value.as_string());
    requirements.push_back(formulas_.find(digest)->formula);
  }

  analysis::DiagnosticEngine diagnostics;
  std::vector<Json> rows;

  // Same between-legs gate as `check`: parsing is done, so an expired
  // deadline answers structured Unknowns rather than entering the analyzer.
  if (!is_complete(budget.poll())) {
    for (const auto& text : texts) {
      diagnostics.emit("MPH-V004", "requirement '" + text + "'",
                       "request budget expired before the vacuity leg started; "
                       "verdict unknown");
      rows.push_back(JsonWriter()
                         .field("spec", text)
                         .field("verdict", "unknown")
                         .field("outcome", to_string(Outcome::BudgetDeadline))
                         .build());
      ++budget_exhaustions_;
    }
    return JsonWriter()
        .field("ok", true)
        .field("op", "vacuity")
        .field("model", model.label)
        .field("model_digest", digest_hex(model.digest))
        .field("requirements", Json::array(std::move(rows)))
        .field("diagnostics", diagnostics_json(diagnostics))
        .build();
  }

  analysis::VacuityOptions vopts;
  vopts.check = check_options(request, budget);
  if (const Json* dispatch = request.find("class_dispatch"))
    vopts.class_dispatch = dispatch->as_bool();
  const analysis::VacuityResult vr =
      analysis::analyze_vacuity(model.system, requirements, model.atoms, diagnostics, vopts);

  for (std::size_t i = 0; i < vr.requirements.size(); ++i) {
    const auto& rv = vr.requirements[i];
    if (rv.verdict == analysis::RequirementVacuity::Verdict::Unknown)
      ++budget_exhaustions_;
    std::uint64_t checked = 0;
    for (const auto& mc : rv.mutants)
      if (mc.engine != "skipped") ++checked;
    JsonWriter w;
    w.field("spec", texts[i])
        .field("verdict", to_string(rv.verdict))
        .field("outcome", to_string(rv.original.outcome))
        .field("holds", rv.original.holds)
        .field("antecedent_failure", rv.antecedent_failure)
        .field("mutants_checked", checked)
        .field("mutants", static_cast<std::uint64_t>(rv.mutants.size()));
    if (rv.witness)
      w.field("witness",
              JsonWriter()
                  .field("prefix", static_cast<std::uint64_t>(rv.witness->prefix.size()))
                  .field("loop", static_cast<std::uint64_t>(rv.witness->loop.size()))
                  .build());
    rows.push_back(std::move(w).build());
  }

  const auto& st = vr.stats;
  return JsonWriter()
      .field("ok", true)
      .field("op", "vacuity")
      .field("model", model.label)
      .field("model_digest", digest_hex(model.digest))
      .field("requirements", Json::array(std::move(rows)))
      .field("stats", JsonWriter()
                          .field("mutants_checked",
                                 static_cast<std::uint64_t>(st.mutants_checked))
                          .field("mutants_skipped",
                                 static_cast<std::uint64_t>(st.mutants_skipped))
                          .field("safety_prefix",
                                 static_cast<std::uint64_t>(st.safety_prefix))
                          .field("guarantee_dual",
                                 static_cast<std::uint64_t>(st.guarantee_dual))
                          .field("nested_dfs", static_cast<std::uint64_t>(st.nested_dfs))
                          .field("scc", static_cast<std::uint64_t>(st.scc))
                          .field("constant", static_cast<std::uint64_t>(st.constant))
                          .field("unknown", static_cast<std::uint64_t>(st.unknown))
                          .build())
      .field("diagnostics", diagnostics_json(diagnostics))
      .build();
}

Json Server::handle_invalidate(const Json& request) {
  std::uint64_t digest = 0;
  if (const Json* hex = request.find("model_digest")) {
    const std::string& text = as_string_field(*hex, "model_digest");
    if (text.size() != 16 || text.find_first_not_of("0123456789abcdef") != std::string::npos)
      throw std::invalid_argument("model_digest must be 16 lowercase hex digits");
    digest = std::stoull(text, nullptr, 16);
  } else if (const Json* model = request.find("model")) {
    digest = model->is_string() ? builtin_model_digest(model->as_string())
                                : model_digest(fts_spec_from_json(*model));
  } else {
    throw std::invalid_argument("invalidate needs a 'model' or 'model_digest'");
  }
  const std::size_t erased = verdicts_.invalidate_model(digest);
  return JsonWriter()
      .field("ok", true)
      .field("op", "invalidate")
      .field("model_digest", digest_hex(digest))
      .field("invalidated", static_cast<std::uint64_t>(erased))
      .build();
}

Json Server::stats_json() const {
  std::vector<std::pair<std::string, Json>> endpoints;
  for (const auto& [op, m] : endpoints_) {
    endpoints.emplace_back(op, JsonWriter()
                                   .field("count", m.count)
                                   .field("errors", m.errors)
                                   .field("p50_us", m.percentile(0.50))
                                   .field("p99_us", m.percentile(0.99))
                                   .build());
  }
  return JsonWriter()
      .field("requests", requests_)
      .field("budget_exhaustions", budget_exhaustions_)
      .field("endpoints", Json::object(std::move(endpoints)))
      .field("caches",
             JsonWriter()
                 .field("formula",
                        JsonWriter()
                            .field("entries",
                                   static_cast<std::uint64_t>(formulas_.size()))
                            .field("hits", formulas_.hits())
                            .field("misses", formulas_.misses())
                            .build())
                 .field("verdict",
                        JsonWriter()
                            .field("entries",
                                   static_cast<std::uint64_t>(verdicts_.size()))
                            .field("hits", verdicts_.hits())
                            .field("misses", verdicts_.misses())
                            .field("dedup", batch_dedups_)
                            .field("subsume_hits", subsume_hits_)
                            .build())
                 .field("implications",
                        JsonWriter()
                            .field("entries",
                                   static_cast<std::uint64_t>(implications_.size()))
                            .field("checks", implication_checks_)
                            .build())
                 .build())
      .build();
}

std::string Server::stats_text() const {
  std::ostringstream out;
  out << "mph-serve stats: " << requests_ << " request(s), " << budget_exhaustions_
      << " budget exhaustion(s)\n";
  for (const auto& [op, m] : endpoints_) {
    out.precision(1);
    out << std::fixed << "  " << op << ": " << m.count << " request(s), " << m.errors
        << " error(s), p50 " << m.percentile(0.50) << " us, p99 " << m.percentile(0.99)
        << " us\n";
  }
  out << "  formula cache: " << formulas_.size() << " entries, " << formulas_.hits()
      << " hits, " << formulas_.misses() << " misses\n"
      << "  verdict cache: " << verdicts_.size() << " entries, " << verdicts_.hits()
      << " hits, " << verdicts_.misses() << " misses, " << batch_dedups_
      << " batch dedup(s), " << subsume_hits_ << " subsume hit(s)\n"
      << "  implication memo: " << implications_.size() << " entries, "
      << implication_checks_ << " inclusion run(s)\n";
  return out.str();
}

}  // namespace mph::serve
