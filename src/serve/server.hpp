// The mph-serve request engine (docs/SERVE.md): one long-lived Server
// object owns the content-addressed caches and answers line-delimited JSON
// requests. The daemon (tools/mph_serve.cpp) is a thin transport around
// handle_line — stdin/stdout for tests and CI, a localhost TCP socket for
// real clients — so every piece of protocol behavior is testable in
// process (tests/serve_test.cpp) and fuzzable (the serve-replay oracle).
//
// Request admission: every op runs under an mph::Budget assembled from the
// server ceilings (ServerConfig) and the request's own `budget_states` /
// `budget_ms` fields, request values clamped to the ceilings. `budget_ms:
// 0` is an already-expired deadline — the deterministic way to exercise
// the budget-deadline Unknown path end to end. A deadline that expires
// between the parse/classify leg and the check leg yields a well-formed
// budget-deadline response with MPH-V004 diagnostics, never a half-written
// response (the PR 7 oracle-hardening pattern, applied to the serve path).
//
// Observability: per-endpoint request/error counts and latency percentiles,
// cache hit/miss/dedup counters, and budget-exhaustion counts — all
// exported by the `stats` op and by stats_text() (the daemon's shutdown
// dump).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/analysis/subsume.hpp"
#include "src/fts/checker.hpp"
#include "src/serve/cache.hpp"
#include "src/serve/json.hpp"
#include "src/support/budget.hpp"

namespace mph::serve {

struct ServerConfig {
  /// Ceiling on any request's state cap; requests may only lower it.
  std::size_t max_budget_states = 200000;
  /// Ceiling on any request's wall-clock allowance in ms (0 = no server
  /// deadline; requests may still set their own).
  std::uint64_t max_budget_ms = 0;
  /// Ceiling on `threads` / `explore_threads` a request may ask for.
  unsigned max_threads = 8;
  /// Additional base budget every admitted request inherits (state cap,
  /// deadline, and stop token all combine by taking the tighter value).
  /// This is how an embedding — the serve-replay oracle, a test — threads
  /// its own iteration budget through the daemon.
  Budget base_budget;
  /// Master switch for the verdict cache (formula interning always runs).
  bool cache = true;
  /// Cross-spec verdict sharing (docs/SERVE.md): a check miss may derive its
  /// verdict from another spec's cached verdict on the same model via Büchi
  /// language inclusion (analysis::implies) — a holding donor that implies
  /// the spec proves "holds"; a violated donor the spec implies transfers
  /// the violation. Answers are marked cache:"subsume" with the donor's
  /// digest in "via".
  bool subsume_sharing = true;
  /// State cap for each implication check. Server-side and states-only, so
  /// the memoized three-valued answers are deterministic.
  std::size_t subsume_states = 20000;
  /// Cached donor entries scanned per miss before giving up.
  std::size_t subsume_max_candidates = 32;
  /// Latency samples kept per endpoint for the percentile estimates (a ring
  /// of the newest samples).
  std::size_t max_latency_samples = 65536;
};

/// Per-endpoint observability counters.
struct EndpointMetrics {
  std::uint64_t count = 0;
  std::uint64_t errors = 0;
  std::vector<double> latency_us;  ///< ring of the newest `cap` samples
  std::size_t latency_next = 0;    ///< ring cursor (next slot to overwrite)

  /// Appends a sample; once `cap` samples are held the oldest is overwritten
  /// so the percentiles track recent traffic instead of freezing.
  void record(double us, std::size_t cap);

  /// Nearest-rank percentile: the ⌈q·n⌉-th smallest sample (1-indexed), so
  /// p50 of {1, 2} is 1, not 2. q in [0,1]; 0 when no samples.
  double percentile(double q) const;
};

class Server {
 public:
  explicit Server(ServerConfig config = {});

  /// One request line in, one response line out (no trailing newline).
  /// Never throws: malformed JSON, unknown ops, and internal errors all
  /// come back as {"ok": false, "error": {...}} responses.
  std::string handle_line(const std::string& line);

  /// The parsed-value core of handle_line.
  Json handle(const Json& request);

  /// Text rendering of the stats (the daemon's shutdown / SIGUSR1 dump).
  std::string stats_text() const;
  /// The `stats` op's payload.
  Json stats_json() const;

  const ServerConfig& config() const { return config_; }
  const FormulaCache& formula_cache() const { return formulas_; }
  const VerdictCache& verdict_cache() const { return verdicts_; }
  std::uint64_t requests() const { return requests_; }
  std::uint64_t budget_exhaustions() const { return budget_exhaustions_; }
  std::uint64_t batch_dedups() const { return batch_dedups_; }
  std::uint64_t subsume_hits() const { return subsume_hits_; }
  std::uint64_t implication_checks() const { return implication_checks_; }

 private:
  Json dispatch(const Json& request);
  Json handle_parse(const Json& request);
  Json handle_classify(const Json& request);
  Json handle_check(const Json& request);
  Json handle_vacuity(const Json& request);
  Json handle_invalidate(const Json& request);

  /// Assembles the request budget from config ceilings + request fields;
  /// throws std::invalid_argument on malformed budget fields.
  Budget admit(const Json& request) const;
  /// Engine options from request fields, clamped to config ceilings.
  fts::CheckOptions check_options(const Json& request, const Budget& budget) const;
  /// Memoized three-valued L(stronger) ⊆ L(weaker) between interned
  /// formulas, under the server's states-only subsume budget.
  analysis::Implication implied(std::uint64_t stronger, std::uint64_t weaker);

  ServerConfig config_;
  FormulaCache formulas_;
  VerdictCache verdicts_;
  std::map<std::string, EndpointMetrics, std::less<>> endpoints_;
  /// (stronger digest, weaker digest) → memoized implication verdict.
  std::map<std::pair<std::uint64_t, std::uint64_t>, analysis::Implication> implications_;
  std::uint64_t requests_ = 0;
  std::uint64_t budget_exhaustions_ = 0;  ///< results answered "unknown"
  std::uint64_t batch_dedups_ = 0;  ///< duplicate specs folded within one batch
  std::uint64_t subsume_hits_ = 0;  ///< verdicts derived from another spec's entry
  std::uint64_t implication_checks_ = 0;  ///< inclusion engine runs (memo misses)
};

/// A resolved `model` request field: built-in name or inline FtsSpec.
struct ResolvedModel {
  fts::Fts system;
  fts::AtomMap atoms;
  std::uint64_t digest = 0;
  std::string label;
  /// The symbolic description when the model came in as an inline FtsSpec —
  /// exactly the object `system` was built from, so `check` can consult the
  /// interval static prover (engine "static", docs/ABSINT.md) soundly.
  std::optional<fts::FtsSpec> spec;
};

/// Resolves a model value — a string naming a built-in (peterson,
/// trivial-mutex, semaphore-weak, semaphore-strong, producer-consumer,
/// dining-N for N=2..12, ring-N for N=2..10) or an inline FtsSpec object.
/// Throws std::invalid_argument on unknown names / malformed objects.
ResolvedModel resolve_model(const Json& model);

/// Inline-model (de)serialization, shared by the server, the serve-replay
/// oracle, tests, and the tab16 load generator.
fuzz::FtsSpec fts_spec_from_json(const Json& model);
Json fts_spec_to_json(const fuzz::FtsSpec& spec);

}  // namespace mph::serve
