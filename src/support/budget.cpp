#include "src/support/budget.hpp"

namespace mph {

std::string_view to_string(Outcome o) {
  switch (o) {
    case Outcome::Complete:
      return "complete";
    case Outcome::BudgetStates:
      return "budget-states";
    case Outcome::BudgetDeadline:
      return "budget-deadline";
    case Outcome::Cancelled:
      return "cancelled";
  }
  return "unknown";
}

void Budget::require(std::size_t current) const {
  if (Outcome o = admit(current); !is_complete(o)) throw BudgetExhausted(o);
}

}  // namespace mph
