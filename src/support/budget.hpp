// Resource-governed execution (docs/BUDGETS.md).
//
// A Budget bounds how much work an unbounded construction may do: a cap on
// interned states / nodes / monoid elements, a wall-clock deadline, and a
// cooperative cancellation token. Engines consult the budget at their
// allocation points and report a structured Outcome describing how far they
// got, instead of throwing std::invalid_argument from deep inside a loop.
//
// Contract:
//   * A Budget is a value type; copying is cheap and sharing one across
//     threads is safe (all observers are const and the stop_token is
//     internally synchronized).
//   * The state cap bounds each governed construction individually (the
//     state graph, each spec's product, each tableau, each monoid) — it is
//     not a shared pool.
//   * `admit(n)` asks "may I create element number n?"; it fails with
//     `Outcome::BudgetStates` once n reaches the cap, so a cap of K admits
//     exactly K elements and a cap of 0 admits none.
//   * `poll()` checks only cancellation and the deadline; it never reads
//     the clock unless a deadline is actually set, so an unlimited Budget
//     costs two predictable branches per call.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <stop_token>
#include <string_view>
#include <utility>

namespace mph {

/// How far a budget-governed construction got.
enum class Outcome : std::uint8_t {
  Complete = 0,        ///< ran to the end; the result is authoritative
  BudgetStates = 1,    ///< hit the state/node cap; the result is partial
  BudgetDeadline = 2,  ///< hit the wall-clock deadline; the result is partial
  Cancelled = 3,       ///< stop was requested; the result is partial
};

/// Stable lower-case names ("complete", "budget-states", ...) for CLIs and
/// JSON reports.
std::string_view to_string(Outcome o);

constexpr bool is_complete(Outcome o) { return o == Outcome::Complete; }

/// Most severe of two outcomes, ordered
/// Complete < BudgetStates < BudgetDeadline < Cancelled.
constexpr Outcome worst(Outcome a, Outcome b) { return a < b ? b : a; }

class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  static constexpr std::size_t kUnlimitedStates = static_cast<std::size_t>(-1);

  /// Default budget: unlimited — every admit()/poll() answers Complete.
  Budget() = default;

  Budget& with_state_cap(std::size_t cap) {
    state_cap_ = cap;
    return *this;
  }
  Budget& with_deadline(Clock::time_point when) {
    deadline_ = when;
    return *this;
  }
  Budget& with_deadline_after(Clock::duration from_now) {
    deadline_ = Clock::now() + from_now;
    return *this;
  }
  Budget& with_stop_token(std::stop_token token) {
    stop_ = std::move(token);
    return *this;
  }

  std::size_t state_cap() const { return state_cap_; }
  bool has_state_cap() const { return state_cap_ != kUnlimitedStates; }
  bool has_deadline() const { return deadline_.has_value(); }
  /// The absolute deadline, when one is set — lets an admission layer
  /// (mph-serve) take the earlier of a base budget's deadline and a
  /// per-request one instead of silently overwriting it.
  std::optional<Clock::time_point> deadline() const { return deadline_; }
  bool unlimited() const {
    return !has_state_cap() && !has_deadline() && !stop_.stop_possible();
  }

  /// Cancellation, then deadline. Never reads the clock without a deadline.
  Outcome poll() const {
    if (stop_.stop_requested()) return Outcome::Cancelled;
    if (deadline_ && Clock::now() >= *deadline_) return Outcome::BudgetDeadline;
    return Outcome::Complete;
  }

  /// May element number `current` be created? (0-based: a cap of K admits
  /// elements 0..K-1.) Checks the cap first, then poll().
  Outcome admit(std::size_t current) const {
    if (current >= state_cap_) return Outcome::BudgetStates;
    return poll();
  }

  /// admit() that throws BudgetExhausted instead of returning — for
  /// unwinding deep construction loops that report the outcome at the top.
  void require(std::size_t current) const;

 private:
  std::size_t state_cap_ = kUnlimitedStates;
  std::optional<Clock::time_point> deadline_;
  std::stop_token stop_;
};

/// Internal unwinding vehicle for budget-governed loops: engines throw it at
/// the allocation site and convert it to an Outcome at their public
/// boundary. It deliberately does NOT derive from std::invalid_argument or
/// std::logic_error, so budget exhaustion is never mistaken for a
/// fragment/validation error by existing catch sites.
class BudgetExhausted : public std::runtime_error {
 public:
  explicit BudgetExhausted(Outcome o)
      : std::runtime_error("budget exhausted"), outcome_(o) {}

  Outcome outcome() const { return outcome_; }

 private:
  Outcome outcome_;
};

/// A possibly-partial result: `value` is engaged iff `outcome` is Complete.
template <class T>
struct Budgeted {
  std::optional<T> value;
  Outcome outcome = Outcome::Complete;

  bool complete() const { return is_complete(outcome); }
};

}  // namespace mph
