// Lightweight contract checking used across the library.
//
// MPH_REQUIRE guards public API preconditions and throws std::invalid_argument
// so misuse is reportable; MPH_ASSERT guards internal invariants and throws
// std::logic_error (it stays on in release builds — every algorithm here is a
// decision procedure whose wrong answer is worse than a slow answer).
#pragma once

#include <stdexcept>
#include <string>

namespace mph {

[[noreturn]] inline void require_failed(const char* cond, const char* file, int line,
                                        const std::string& msg) {
  throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) +
                              ": requirement failed: " + cond + (msg.empty() ? "" : " — " + msg));
}

[[noreturn]] inline void assert_failed(const char* cond, const char* file, int line) {
  throw std::logic_error(std::string(file) + ":" + std::to_string(line) +
                         ": internal invariant violated: " + cond);
}

}  // namespace mph

#define MPH_REQUIRE(cond, msg)                                    \
  do {                                                            \
    if (!(cond)) ::mph::require_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define MPH_ASSERT(cond)                                          \
  do {                                                            \
    if (!(cond)) ::mph::assert_failed(#cond, __FILE__, __LINE__); \
  } while (0)
