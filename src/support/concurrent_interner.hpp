// Concurrent interning for the shared-state parallel engines
// (docs/PARALLEL.md): a sharded FlatInterner behind per-shard locks, plus a
// chunked array of atomics used for id-indexed side tables (product keys,
// CNDFS colors) that grow while other threads read them.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/support/check.hpp"
#include "src/support/flat_hash.hpp"

namespace mph {

/// Growable array of atomics with stable addresses: a fixed directory of
/// lazily CAS-allocated fixed-size chunks. Entries are zero-initialized when
/// their chunk appears and readers never block. Used for id-indexed side
/// tables shared between workers — the publishing discipline is the caller's
/// (typically: written under the interner's shard lock before the id
/// escapes, or via fetch_or on the atomic itself).
template <class T>
class ChunkedAtomicArray {
 public:
  ChunkedAtomicArray() : dir_(new std::atomic<std::atomic<T>*>[kDirSize]) {
    for (std::size_t i = 0; i < kDirSize; ++i)
      dir_[i].store(nullptr, std::memory_order_relaxed);
  }
  ~ChunkedAtomicArray() {
    for (std::size_t i = 0; i < kDirSize; ++i)
      delete[] dir_[i].load(std::memory_order_relaxed);
  }
  ChunkedAtomicArray(const ChunkedAtomicArray&) = delete;
  ChunkedAtomicArray& operator=(const ChunkedAtomicArray&) = delete;

  /// The atomic at index i, allocating its chunk on first touch. The CAS
  /// publishes the zero-initialized chunk with release semantics, so a
  /// loser's acquire load observes fully constructed entries.
  std::atomic<T>& at(std::size_t i) {
    MPH_ASSERT(i < kDirSize * kChunkSize);
    std::atomic<std::atomic<T>*>& slot = dir_[i >> kChunkBits];
    std::atomic<T>* chunk = slot.load(std::memory_order_acquire);
    if (chunk == nullptr) {
      auto* fresh = new std::atomic<T>[kChunkSize]();
      if (slot.compare_exchange_strong(chunk, fresh, std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
        chunk = fresh;
      } else {
        delete[] fresh;  // another worker won the race; `chunk` now holds its pointer
      }
    }
    return chunk[i & (kChunkSize - 1)];
  }

 private:
  static constexpr std::size_t kChunkBits = 16;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kDirSize = std::size_t{1} << 15;  // 2^31 entries total
  std::unique_ptr<std::atomic<std::atomic<T>*>[]> dir_;
};

/// Maps each distinct key to a dense id, concurrently. A key hashes once;
/// the top bits pick one of 64 shards (each a FlatInterner under its own
/// mutex — FlatInterner probes with the low bits, so shard choice and probe
/// position stay independent) and ids come from one global counter. Ids are
/// dense but assigned in arrival order, which is NOT deterministic across
/// runs — engines that need stable ids renumber after the workers join
/// (fts::explore) or never expose ids at all (the emptiness searches).
///
/// `on_new(id)` runs under the shard lock before the id is returned, so any
/// thread that interns the same key later observes everything on_new wrote.
/// Threads that learn an id through another channel (a work queue, a color
/// flag) must synchronize through that channel as usual.
template <class Key, class Hash>
class ConcurrentInterner {
 public:
  /// Returns (dense id of key, whether it was newly inserted).
  std::pair<std::uint32_t, bool> intern(Key key) {
    return intern(std::move(key), [](std::uint32_t) {});
  }

  template <class OnNew>
  std::pair<std::uint32_t, bool> intern(Key key, OnNew&& on_new) {
    const std::uint64_t h = hash_(key);
    Shard& s = shards_[(h >> 58) & (kShards - 1)];
    std::lock_guard<std::mutex> lock(s.mu);
    auto [local, inserted] = s.table.intern(std::move(key));
    if (!inserted) return {s.ids[local], false};
    const std::uint32_t id = next_.fetch_add(1, std::memory_order_relaxed);
    on_new(id);
    s.ids.push_back(id);
    return {id, true};
  }

  /// Total distinct keys interned: exact once the workers have joined, a
  /// snapshot that may lag in-flight interns while they run.
  std::size_t size() const { return next_.load(std::memory_order_relaxed); }

 private:
  static constexpr std::size_t kShards = 64;

  struct alignas(64) Shard {
    std::mutex mu;
    FlatInterner<Key, Hash> table;
    std::vector<std::uint32_t> ids;  // shard-local index -> global id
  };

  Hash hash_;
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint32_t> next_{0};
};

}  // namespace mph
