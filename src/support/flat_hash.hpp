// Open-addressing flat hash interning — the hot-path replacement for the
// ordered std::map indices used wherever a growing set of keys must be
// mapped to dense indices (state-graph exploration, product construction,
// subset constructions). Linear probing over a power-of-two slot table,
// cached 64-bit hashes (compared before the key so growth never rehashes
// and probe misses stay cheap), max load factor 0.7.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "src/support/check.hpp"

namespace mph {

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash for integers.
constexpr std::uint64_t hash_mix(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Order-dependent combination of a running hash with one more value.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return hash_mix(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

/// Hash of an integer range (vectors of valuations, mark lists, ...).
template <class Range>
constexpr std::uint64_t hash_range(const Range& r) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const auto& v : r)
    h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  return h;
}

/// Hasher for keys that are already integers.
struct IntHash {
  template <class T>
  constexpr std::uint64_t operator()(T v) const {
    return hash_mix(static_cast<std::uint64_t>(v));
  }
};

/// Hasher for integer ranges.
struct IntRangeHash {
  template <class Range>
  constexpr std::uint64_t operator()(const Range& r) const {
    return hash_range(r);
  }
};

/// Maps each distinct key to a dense index 0, 1, 2, ... in insertion order.
/// `Hash` must return std::uint64_t. Keys are stored contiguously and stay
/// addressable by index for the lifetime of the interner.
template <class Key, class Hash>
class FlatInterner {
 public:
  explicit FlatInterner(Hash hash = Hash{}) : hash_(std::move(hash)) {
    slots_.assign(kMinSlots, kEmpty);
  }

  /// Returns (index of key, whether it was newly inserted).
  std::pair<std::size_t, bool> intern(Key key) {
    if ((keys_.size() + 1) * 10 > slots_.size() * 7) grow();
    const std::uint64_t h = hash_(key);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != kEmpty) {
      const std::uint32_t idx = slots_[i];
      if (hashes_[idx] == h && keys_[idx] == key) return {idx, false};
      i = (i + 1) & mask;
    }
    MPH_ASSERT(keys_.size() < kEmpty);
    const std::uint32_t idx = static_cast<std::uint32_t>(keys_.size());
    slots_[i] = idx;
    keys_.push_back(std::move(key));
    hashes_.push_back(h);
    return {idx, true};
  }

  /// Index of key if present.
  bool contains(const Key& key) const {
    const std::uint64_t h = hash_(key);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    while (slots_[i] != kEmpty) {
      const std::uint32_t idx = slots_[i];
      if (hashes_[idx] == h && keys_[idx] == key) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  std::size_t size() const { return keys_.size(); }
  const Key& operator[](std::size_t i) const { return keys_[i]; }
  const std::vector<Key>& keys() const { return keys_; }

  void reserve(std::size_t n) {
    keys_.reserve(n);
    hashes_.reserve(n);
    std::size_t want = kMinSlots;
    while (n * 10 > want * 7) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

 private:
  static constexpr std::uint32_t kEmpty = ~std::uint32_t{0};
  static constexpr std::size_t kMinSlots = 16;

  void grow() { rehash(slots_.size() * 2); }

  void rehash(std::size_t n_slots) {
    slots_.assign(n_slots, kEmpty);
    const std::size_t mask = n_slots - 1;
    for (std::uint32_t idx = 0; idx < keys_.size(); ++idx) {
      std::size_t i = static_cast<std::size_t>(hashes_[idx]) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = idx;
    }
  }

  std::vector<Key> keys_;
  std::vector<std::uint64_t> hashes_;
  std::vector<std::uint32_t> slots_;  // key index, or kEmpty
  Hash hash_;
};

}  // namespace mph
