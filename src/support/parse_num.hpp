// Strict numeric parsing for CLI flags (mph-lint, mph-fuzz, mph-serve).
//
// std::stoul/std::stoull accept what the tools must reject: leading
// whitespace, a unary minus that wraps silently ("-5" → 2^64-5), and
// trailing garbage ("1e9x" parses as 1). Every numeric flag goes through
// parse_u64 instead: the whole string must be base-10 digits and the value
// must fit, otherwise the caller reports a usage error (exit 2) — never an
// uncaught std::invalid_argument, never a silently truncated value.
#pragma once

#include <charconv>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace mph {

/// Full-string base-10 unsigned parse: nullopt on empty input, any
/// non-digit character (including sign characters and trailing garbage),
/// or overflow past 2^64-1.
inline std::optional<std::uint64_t> parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  const char* first = text.data();
  const char* last = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(first, last, value, 10);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return value;
}

/// parse_u64 with an inclusive upper bound (for flags like thread counts
/// that feed narrower types).
inline std::optional<std::uint64_t> parse_u64(std::string_view text, std::uint64_t max) {
  auto v = parse_u64(text);
  if (v && *v > max) return std::nullopt;
  return v;
}

}  // namespace mph
