#include "src/support/rng.hpp"

#include "src/support/check.hpp"

namespace mph {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // A state of all zeros would be a fixed point; splitmix64 never yields it
  // for four consecutive draws, but keep the guard explicit.
  MPH_ASSERT(s_[0] || s_[1] || s_[2] || s_[3]);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  MPH_REQUIRE(bound > 0, "empty range");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
  std::uint64_t v = next();
  while (v >= limit) v = next();
  return v % bound;
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) {
  MPH_REQUIRE(lo <= hi, "inverted range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next() : below(span));
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  MPH_REQUIRE(den > 0 && num <= den, "probability out of range");
  return below(den) < num;
}

}  // namespace mph
