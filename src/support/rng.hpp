// Deterministic, seedable random source (xoshiro256**) used by fuzz-style
// property tests and benchmark workload generators. We avoid std::mt19937 in
// public interfaces so that sequences are stable across standard libraries.
#pragma once

#include <cstdint>
#include <vector>

namespace mph {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw: true with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Uniform element of a non-empty vector.
  template <typename T>
  const T& pick(const std::vector<T>& xs) {
    return xs[static_cast<std::size_t>(below(xs.size()))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace mph
