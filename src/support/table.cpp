#include "src/support/table.hpp"

#include <algorithm>
#include <sstream>

#include "src/support/check.hpp"

namespace mph {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  MPH_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MPH_REQUIRE(cells.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    out << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  out << "-|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace mph
