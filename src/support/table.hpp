// Minimal fixed-width text table used by examples and benchmark reports to
// print paper-style result rows without dragging in a formatting library.
#pragma once

#include <string>
#include <vector>

namespace mph {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the table with a header rule; every column sized to fit.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mph
