// Work-stealing frontier for the parallel engines (docs/PARALLEL.md):
// per-worker deques under light mutexes — an owner pops from the back, a
// thief moves half of a victim's items from the front — plus a pending-item
// counter for global termination (a deque can be momentarily empty while the
// items popped from it are still producing children).
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "src/support/check.hpp"

namespace mph {

template <class T>
class WorkStealingQueues {
 public:
  explicit WorkStealingQueues(std::size_t workers) : queues_(workers) {
    MPH_REQUIRE(workers >= 1, "work-stealing frontier needs at least one worker");
  }

  /// Enqueues onto worker w's deque. The item counts as pending until the
  /// worker that pops it calls done().
  void push(std::size_t w, T item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(queues_[w].mu);
    queues_[w].items.push_back(std::move(item));
  }

  /// Pop for worker w: own back first (LIFO keeps the working set warm),
  /// otherwise steal the front half of the first non-empty victim — the
  /// oldest items, which root the largest unexplored regions. Returns false
  /// when nothing is available right now; the caller distinguishes "spin"
  /// from "terminate" via idle().
  bool pop(std::size_t w, T& out) {
    Deque& mine = queues_[w];
    {
      std::lock_guard<std::mutex> lock(mine.mu);
      if (!mine.items.empty()) {
        out = std::move(mine.items.back());
        mine.items.pop_back();
        return true;
      }
    }
    for (std::size_t k = 1; k < queues_.size(); ++k) {
      Deque& victim = queues_[(w + k) % queues_.size()];
      std::scoped_lock lock(mine.mu, victim.mu);
      if (victim.items.empty()) continue;
      const std::size_t take = (victim.items.size() + 1) / 2;
      for (std::size_t i = 0; i < take; ++i) {
        mine.items.push_back(std::move(victim.items.front()));
        victim.items.pop_front();
      }
      mine.stolen += take;
      out = std::move(mine.items.back());
      mine.items.pop_back();
      return true;
    }
    return false;
  }

  /// Marks one previously popped item finished. Push any children *before*
  /// calling this, so pending_ never dips to zero while work is in flight.
  void done() { pending_.fetch_sub(1, std::memory_order_acq_rel); }

  /// True when every pushed item has been finished — global termination.
  bool idle() const { return pending_.load(std::memory_order_acquire) == 0; }

  /// Items worker w stole from other deques. Stable only after the workers
  /// have joined.
  std::size_t stolen(std::size_t w) const { return queues_[w].stolen; }

  /// Invokes f on every remaining item (after an early stop) and empties the
  /// deques. Single-threaded use only, after the workers have joined.
  template <class F>
  void drain(F&& f) {
    for (Deque& q : queues_) {
      std::lock_guard<std::mutex> lock(q.mu);
      for (T& item : q.items) f(item);
      q.items.clear();
    }
  }

 private:
  struct alignas(64) Deque {
    std::mutex mu;
    std::deque<T> items;
    std::size_t stolen = 0;  // written by the owner under mu, read post-join
  };

  std::vector<Deque> queues_;
  std::atomic<std::size_t> pending_{0};
};

}  // namespace mph
