#include "src/topology/topology.hpp"

#include <cmath>

#include "src/core/classify.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"

namespace mph::topology {

double distance(const omega::Lasso& a, const omega::Lasso& b) {
  if (a.same_word(b)) return 0.0;
  std::size_t j = 0;
  while (a.at(j) == b.at(j)) ++j;
  return std::ldexp(1.0, -static_cast<int>(j));
}

omega::DetOmega closure(const omega::DetOmega& m) { return omega::safety_closure(m); }

omega::DetOmega interior(const omega::DetOmega& m) {
  return omega::complement(omega::safety_closure(omega::complement(m)));
}

bool is_limit_point(const omega::DetOmega& m, const omega::Lasso& sigma) {
  return closure(m).accepts(sigma);
}

bool is_closed(const omega::DetOmega& m) { return core::is_safety(m); }
bool is_open(const omega::DetOmega& m) { return core::is_guarantee(m); }
bool is_clopen(const omega::DetOmega& m) { return is_closed(m) && is_open(m); }
bool is_g_delta(const omega::DetOmega& m) { return core::is_recurrence(m); }
bool is_f_sigma(const omega::DetOmega& m) { return core::is_persistence(m); }
bool is_dense(const omega::DetOmega& m) { return omega::is_liveness(m); }

}  // namespace mph::topology
