// The topological view (§3): Σ^ω as a complete metric space under the
// common-prefix metric, with the paper's correspondences
//
//   safety      = closed sets        guarantee   = open sets
//   recurrence  = G_δ sets           persistence = F_σ sets
//   obligation  = sets that are both G_δ and F_σ
//   liveness    = dense sets
//
// These functions are the §3 vocabulary over the automata machinery: the
// topological closure *is* the safety closure A(Pref(Π)), proved in §3.
#pragma once

#include "src/omega/det_omega.hpp"
#include "src/omega/lasso.hpp"

namespace mph::topology {

/// μ(σ, σ') = 2^{-j} where j is the length of the longest common prefix;
/// 0 when the two lassos denote the same word.
double distance(const omega::Lasso& a, const omega::Lasso& b);

/// Topological closure cl(Π) = A(Pref(Π)).
omega::DetOmega closure(const omega::DetOmega& m);

/// Topological interior: complement of the closure of the complement.
omega::DetOmega interior(const omega::DetOmega& m);

/// σ is a limit point of Π iff σ ∈ cl(Π).
bool is_limit_point(const omega::DetOmega& m, const omega::Lasso& sigma);

bool is_closed(const omega::DetOmega& m);    // ⇔ safety
bool is_open(const omega::DetOmega& m);      // ⇔ guarantee
bool is_clopen(const omega::DetOmega& m);    // closed ∧ open
bool is_g_delta(const omega::DetOmega& m);   // ⇔ recurrence
bool is_f_sigma(const omega::DetOmega& m);   // ⇔ persistence
bool is_dense(const omega::DetOmega& m);     // ⇔ liveness

}  // namespace mph::topology
