// Tests of the interval abstract interpreter (src/analysis/absint.hpp,
// docs/ABSINT.md): fixpoint precision on hand-built systems and on the
// symbolic dining/ring families, the MPH-F010/F011/F012 verdicts, and the
// exploration-free static proof path through CheckOptions::static_prover —
// including its agreement with the exploration engines and its refusal
// discipline.
#include <gtest/gtest.h>

#include "src/analysis/absint.hpp"
#include "src/analysis/passes.hpp"
#include "src/fts/checker.hpp"
#include "src/fts/spec_model.hpp"
#include "src/ltl/ast.hpp"

namespace mph::analysis {
namespace {

using fts::FtsSpec;

const AbsintResult::VarInvariant& var_of(const AbsintResult& r, const std::string& name) {
  for (const auto& v : r.invariants)
    if (v.name == name) return v;
  ADD_FAILURE() << "no invariant for variable " << name;
  static AbsintResult::VarInvariant none;
  return none;
}

const AbsintResult::TransVerdict& trans_of(const AbsintResult& r, const std::string& name) {
  for (const auto& t : r.transitions)
    if (t.name == name) return t;
  ADD_FAILURE() << "no verdict for transition " << name;
  static AbsintResult::TransVerdict none;
  return none;
}

TEST(Absint, GuardTightensTheImage) {
  // x ∈ [0, 5] init 0, one transition: guard x ≤ 2, effect x += 1. The
  // reachable set is {0..3}; the interval fixpoint lands exactly on it.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 5, 0});
  FtsSpec::Trans inc;
  inc.name = "inc";
  inc.guard.push_back({0, 0, 2});  // x <= 2
  inc.effects.push_back({0, 0, 1});
  spec.transitions.push_back(inc);

  const AbsintResult r = analyze_intervals(spec);
  const auto& x = var_of(r, "x");
  EXPECT_EQ(x.inv.lo, 0);
  EXPECT_EQ(x.inv.hi, 3);
  EXPECT_TRUE(x.tightened);
  EXPECT_FALSE(trans_of(r, "inc").may_wrap);
  EXPECT_EQ(r.dead_count(), 0u);
}

TEST(Absint, DeadGuardIsReported) {
  // y never leaves 0, so a guard y ≥ 1 is unsatisfiable under the invariant.
  FtsSpec spec;
  spec.vars.push_back({"y", 0, 3, 0});
  FtsSpec::Trans dead;
  dead.name = "dead";
  dead.guard.push_back({0, 1, 1});  // y >= 1
  dead.effects.push_back({0, 0, 1});
  spec.transitions.push_back(dead);

  const AbsintResult r = analyze_intervals(spec);
  EXPECT_TRUE(trans_of(r, "dead").dead);
  EXPECT_EQ(r.dead_count(), 1u);
  // The dead transition contributes no image: y stays at its initial point.
  EXPECT_EQ(var_of(r, "y").inv.lo, 0);
  EXPECT_EQ(var_of(r, "y").inv.hi, 0);
}

TEST(Absint, WrapAtExactSpanIsFlaggedButPrecise) {
  // x ∈ [0, 2], effect x += 3: concretely the identity (3 ≡ 0 mod span),
  // abstractly a wrap that still maps [0, 2] onto [0, 2].
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 2, 1});
  FtsSpec::Trans tick;
  tick.name = "tick";
  tick.effects.push_back({0, 0, 3});
  spec.transitions.push_back(tick);

  const AbsintResult r = analyze_intervals(spec);
  const auto& tv = trans_of(r, "tick");
  EXPECT_TRUE(tv.may_wrap);
  ASSERT_EQ(tv.wrap_vars.size(), 1u);
  EXPECT_EQ(tv.wrap_vars[0], "x");
  // Initial point 1 plus the self-mapping effect: the point is preserved…
  // except joins go through the wrapped interval [0, 2] → full domain here.
  EXPECT_GE(var_of(r, "x").inv.lo, 0);
  EXPECT_LE(var_of(r, "x").inv.hi, 2);
}

TEST(Absint, DiningFamilyInvariant) {
  const AbsintResult r = analyze_intervals(fts::symbolic_dining(3));
  // The alarm latch never fires: alarm is pinned to 0 (MPH-F011) and the
  // escalate transition is dead (MPH-F010).
  const auto& alarm = var_of(r, "alarm");
  EXPECT_EQ(alarm.inv.lo, 0);
  EXPECT_EQ(alarm.inv.hi, 0);
  EXPECT_TRUE(alarm.tightened);
  EXPECT_TRUE(trans_of(r, "escalate").dead);
  // put_down wraps pc from 2 back to 0 (MPH-F012).
  EXPECT_TRUE(trans_of(r, "put_down0").may_wrap);
  // The philosopher program counters genuinely cover their domains.
  EXPECT_FALSE(var_of(r, "pc0").tightened);
  EXPECT_EQ(var_of(r, "pc0").inv.hi, 2);
}

TEST(Absint, RingFamilyInvariant) {
  const AbsintResult r = analyze_intervals(fts::symbolic_ring(4));
  EXPECT_TRUE(trans_of(r, "escalate").dead);
  EXPECT_TRUE(var_of(r, "alarm").tightened);
  // Token passing is guard-pinned to points: no wraps anywhere.
  EXPECT_EQ(r.wrap_count(), 0u);
  for (std::size_t i = 0; i < 4; ++i) {
    const auto& tok = var_of(r, "token" + std::to_string(i));
    EXPECT_EQ(tok.inv.lo, 0);
    EXPECT_EQ(tok.inv.hi, 1);
  }
}

TEST(Absint, LintEmitsTheCodes) {
  DiagnosticEngine engine;
  lint_absint(fts::symbolic_dining(2), engine);
  EXPECT_EQ(engine.count_code("MPH-F010"), 1u);  // escalate
  EXPECT_EQ(engine.count_code("MPH-F011"), 1u);  // alarm
  EXPECT_EQ(engine.count_code("MPH-F012"), 2u);  // both put_downs
  EXPECT_FALSE(engine.has_errors());
}

TEST(Absint, PassRegistryRunsOnSpecModels) {
  const FtsSpec spec = fts::symbolic_dining(2);
  DiagnosticEngine engine;
  run_passes(Subject::of(spec, "dining-2"), engine);
  EXPECT_GE(engine.count_code("MPH-F010"), 1u);
  bool found = false;
  for (const auto& pass : registered_passes())
    if (pass.id == "absint") {
      found = true;
      EXPECT_EQ(pass.kind, Subject::Kind::SpecModel);
    }
  EXPECT_TRUE(found);
}

TEST(Absint, FindSymbolicModel) {
  EXPECT_TRUE(fts::find_symbolic_model("dining-5").has_value());
  EXPECT_TRUE(fts::find_symbolic_model("ring-10").has_value());
  EXPECT_FALSE(fts::find_symbolic_model("ring-11").has_value());
  EXPECT_FALSE(fts::find_symbolic_model("dining-1").has_value());
  EXPECT_FALSE(fts::find_symbolic_model("peterson").has_value());
  EXPECT_FALSE(fts::find_symbolic_model("dining-").has_value());
}

TEST(StaticProver, ProvesBoxSafetyWithoutExploring) {
  const FtsSpec spec = fts::symbolic_dining(3);
  const fts::Fts sys = spec.build();
  const fts::AtomMap atoms = spec.atoms();
  fts::CheckOptions opts;
  opts.static_prover = make_static_prover(spec);
  const auto r = fts::check(sys, ltl::parse_formula("G alarmlo"), atoms, opts);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.outcome, Outcome::Complete);
  EXPECT_EQ(r.stats.engine, fts::CheckEngine::StaticProof);
  EXPECT_EQ(r.stats.state_graph_nodes, 0u);
  EXPECT_EQ(r.stats.product_states, 0u);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(StaticProver, AgreesWithExplorationEngines) {
  const FtsSpec spec = fts::symbolic_ring(3);
  const fts::Fts sys = spec.build();
  const fts::AtomMap atoms = spec.atoms();
  const auto f = ltl::parse_formula("G alarmlo");
  fts::CheckOptions static_opts;
  static_opts.static_prover = make_static_prover(spec);
  fts::CheckOptions scc;
  scc.force_scc = true;
  const auto r_static = fts::check(sys, f, atoms, static_opts);
  const auto r_scc = fts::check(sys, f, atoms, scc);
  const auto r_plain = fts::check(sys, f, atoms, fts::CheckOptions{});
  EXPECT_EQ(r_static.holds, r_scc.holds);
  EXPECT_EQ(r_static.holds, r_plain.holds);
  // force_scc must bypass the prover (the fuzz oracles rely on it meaning
  // "the SCC engine ran").
  EXPECT_NE(r_scc.stats.engine, fts::CheckEngine::StaticProof);
}

TEST(StaticProver, RefusesWhatTheBoxCannotDecide) {
  const FtsSpec spec = fts::symbolic_dining(2);
  const auto prover = make_static_prover(spec);
  // Liveness: not a □(state) shape.
  EXPECT_FALSE(prover(ltl::parse_formula("F alarmhi")).has_value());
  // pc0 covers [0, 2]: pc0hi is sometimes false, the box cannot certify it.
  EXPECT_FALSE(prover(ltl::parse_formula("G pc0hi")).has_value());
  // Nested temporal body under □.
  EXPECT_FALSE(prover(ltl::parse_formula("G F alarmlo")).has_value());
  // A violated state formula must be refused, never "certified false".
  EXPECT_FALSE(prover(ltl::parse_formula("alarmhi")).has_value());
}

TEST(StaticProver, SplitsConjunctionsAndEvaluatesInitialStates) {
  const FtsSpec spec = fts::symbolic_dining(2);
  const auto prover = make_static_prover(spec);
  // Pure state formula, decided exactly at the initial valuation.
  const auto init = prover(ltl::parse_formula("pc0lo & fork1lo"));
  ASSERT_TRUE(init.has_value());
  EXPECT_TRUE(init->holds);
  // Conjunction of a box-provable □ and an initial-state fact.
  const auto both = prover(ltl::parse_formula("G alarmlo & pc1lo"));
  ASSERT_TRUE(both.has_value());
  EXPECT_TRUE(both->holds);
  // One refusable conjunct refuses the whole conjunction.
  EXPECT_FALSE(prover(ltl::parse_formula("G alarmlo & F alarmhi")).has_value());
}

TEST(StaticProver, CertificationAcceptsTheSoundInvariant) {
  StaticProverOptions opts;
  opts.certify = true;  // force the cross-check regardless of build type
  opts.certify_max_states = 100000;
  const auto prover = make_static_prover(fts::symbolic_dining(2), opts);
  const auto r = prover(ltl::parse_formula("G alarmlo"));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->holds);
}

TEST(StaticProver, BatchResolvesMixedSpecs) {
  // One provable spec and one the prover refuses: the batch must resolve
  // the first statically and still explore for the second.
  const FtsSpec spec = fts::symbolic_ring(2);
  const fts::Fts sys = spec.build();
  const fts::AtomMap atoms = spec.atoms();
  std::vector<ltl::Formula> specs;
  specs.push_back(ltl::parse_formula("G alarmlo"));
  specs.push_back(ltl::parse_formula("F token1hi"));
  fts::CheckOptions opts;
  opts.static_prover = make_static_prover(spec);
  const auto results = fts::check_all(sys, specs, atoms, opts);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stats.engine, fts::CheckEngine::StaticProof);
  EXPECT_EQ(results[0].stats.state_graph_nodes, 0u);
  EXPECT_TRUE(results[0].holds);
  EXPECT_NE(results[1].stats.engine, fts::CheckEngine::StaticProof);
  EXPECT_GT(results[1].stats.state_graph_nodes, 0u);
}

TEST(StaticProver, EmitsMphV005) {
  const FtsSpec spec = fts::symbolic_dining(2);
  const fts::Fts sys = spec.build();
  DiagnosticEngine engine;
  fts::CheckOptions opts;
  opts.static_prover = make_static_prover(spec);
  opts.diagnostics = &engine;
  std::vector<ltl::Formula> specs{ltl::parse_formula("G alarmlo")};
  fts::check_all(sys, specs, spec.atoms(), opts);
  EXPECT_EQ(engine.count_code("MPH-V005"), 1u);
}

TEST(Absint, JsonShape) {
  const std::string doc = to_json(analyze_intervals(fts::symbolic_dining(2)));
  EXPECT_NE(doc.find("\"invariants\""), std::string::npos);
  EXPECT_NE(doc.find("\"transitions\""), std::string::npos);
  EXPECT_NE(doc.find("\"dead_count\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"tightened_count\": 1"), std::string::npos);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
}

}  // namespace
}  // namespace mph::analysis
