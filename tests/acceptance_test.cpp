#include <gtest/gtest.h>

#include "src/omega/acceptance.hpp"

namespace mph::omega {
namespace {

TEST(Acceptance, ConstantsEval) {
  EXPECT_TRUE(Acceptance::t().eval(0));
  EXPECT_FALSE(Acceptance::f().eval(0));
  EXPECT_TRUE(Acceptance::t().eval(~MarkSet{0}));
}

TEST(Acceptance, AtomsEval) {
  auto i0 = Acceptance::inf(0);
  auto f0 = Acceptance::fin(0);
  EXPECT_TRUE(i0.eval(mark_bit(0)));
  EXPECT_FALSE(i0.eval(0));
  EXPECT_FALSE(f0.eval(mark_bit(0)));
  EXPECT_TRUE(f0.eval(mark_bit(1)));
}

TEST(Acceptance, ConjDisjFolding) {
  EXPECT_TRUE(Acceptance::conj(Acceptance::t(), Acceptance::t()).is_true());
  EXPECT_TRUE(Acceptance::conj(Acceptance::t(), Acceptance::f()).is_false());
  EXPECT_TRUE(Acceptance::disj(Acceptance::f(), Acceptance::f()).is_false());
  EXPECT_TRUE(Acceptance::disj(Acceptance::t(), Acceptance::inf(3)).is_true());
  EXPECT_EQ(Acceptance::conj(Acceptance::t(), Acceptance::inf(3)), Acceptance::inf(3));
}

TEST(Acceptance, StreettShape) {
  auto acc = Acceptance::streett(2);
  // ⋀ (Inf(2i) ∨ Fin(2i+1)): satisfied with all R-marks present.
  EXPECT_TRUE(acc.eval(mark_bit(0) | mark_bit(2)));
  // Pair 0 violated: no Inf(0) and mark 1 present.
  EXPECT_FALSE(acc.eval(mark_bit(1) | mark_bit(2)));
  // Pair 0 satisfied via Fin(1), pair 1 via Fin(3).
  EXPECT_TRUE(acc.eval(0));
}

TEST(Acceptance, RabinIsStreettDual) {
  auto streett = Acceptance::streett(2);
  auto rabin = streett.negate();
  for (MarkSet ms = 0; ms < 16; ++ms) EXPECT_EQ(rabin.eval(ms), !streett.eval(ms)) << ms;
}

TEST(Acceptance, NegateIsInvolution) {
  auto acc = Acceptance::conj(Acceptance::disj(Acceptance::inf(0), Acceptance::fin(1)),
                              Acceptance::disj(Acceptance::inf(2), Acceptance::fin(3)));
  auto back = acc.negate().negate();
  for (MarkSet ms = 0; ms < 16; ++ms) EXPECT_EQ(acc.eval(ms), back.eval(ms));
}

TEST(Acceptance, RabinNamedMatchesDefinition) {
  auto rabin = Acceptance::rabin(1);  // Fin(0) ∧ Inf(1)
  EXPECT_TRUE(rabin.eval(mark_bit(1)));
  EXPECT_FALSE(rabin.eval(mark_bit(0) | mark_bit(1)));
  EXPECT_FALSE(rabin.eval(0));
}

TEST(Acceptance, SubstituteBothAtoms) {
  auto acc = Acceptance::disj(Acceptance::inf(0), Acceptance::fin(1));
  EXPECT_TRUE(acc.substitute(0, true, false).is_true());
  auto acc2 = acc.substitute(0, false, true);
  // Remaining: Fin(1).
  EXPECT_TRUE(acc2.eval(0));
  EXPECT_FALSE(acc2.eval(mark_bit(1)));
}

TEST(Acceptance, SubstituteFinLeavesInf) {
  auto acc = Acceptance::conj(Acceptance::inf(0), Acceptance::fin(0));
  auto sub = acc.substitute_fin(0, false);
  EXPECT_TRUE(sub.is_false());
  auto acc2 = Acceptance::disj(Acceptance::inf(0), Acceptance::fin(0));
  auto sub2 = acc2.substitute_fin(0, false);
  // Inf(0) survives.
  EXPECT_TRUE(sub2.eval(mark_bit(0)));
  EXPECT_FALSE(sub2.eval(0));
}

TEST(Acceptance, RestrictToAbsentMarks) {
  auto acc = Acceptance::disj(Acceptance::inf(5), Acceptance::fin(6));
  // Mark 5 absent: Inf(5) → false; mark 6 absent: Fin(6) → true.
  EXPECT_TRUE(acc.restrict_to(0).is_true());
  auto only5 = acc.restrict_to(mark_bit(5) | mark_bit(6));
  EXPECT_FALSE(only5.is_true());
  EXPECT_FALSE(only5.is_false());
}

TEST(Acceptance, ShiftRenumbersMarks) {
  auto acc = Acceptance::disj(Acceptance::inf(0), Acceptance::fin(1)).shift(10);
  EXPECT_TRUE(acc.eval(mark_bit(10)));
  EXPECT_FALSE(acc.eval(mark_bit(0) | mark_bit(11)));
  EXPECT_EQ(acc.mentioned_marks(), mark_bit(10) | mark_bit(11));
}

TEST(Acceptance, MarkQueries) {
  auto acc = Acceptance::streett(2);
  EXPECT_EQ(acc.mentioned_marks(), MarkSet{0b1111});
  EXPECT_EQ(acc.fin_marks(), mark_bit(1) | mark_bit(3));
  EXPECT_EQ(Acceptance::buchi(0).fin_marks(), MarkSet{0});
}

TEST(Acceptance, ToStringReadable) {
  EXPECT_EQ(Acceptance::buchi(0).to_string(), "Inf(0)");
  EXPECT_EQ(Acceptance::co_buchi(2).to_string(), "Fin(2)");
  auto s = Acceptance::streett(1).to_string();
  EXPECT_NE(s.find("Inf(0)"), std::string::npos);
  EXPECT_NE(s.find("Fin(1)"), std::string::npos);
}

TEST(Acceptance, MarkOutOfRangeThrows) {
  EXPECT_THROW(Acceptance::inf(64), std::invalid_argument);
  EXPECT_THROW(Acceptance::streett(0), std::invalid_argument);
}

}  // namespace
}  // namespace mph::omega
