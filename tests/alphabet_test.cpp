#include <gtest/gtest.h>

#include "src/lang/alphabet.hpp"
#include "src/lang/word.hpp"

namespace mph::lang {
namespace {

TEST(Alphabet, PlainBasics) {
  auto a = Alphabet::plain({"a", "b", "c"});
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a.name(0), "a");
  EXPECT_EQ(a.name(2), "c");
  EXPECT_FALSE(a.prop_based());
  EXPECT_EQ(a.find("b"), Symbol{1});
  EXPECT_FALSE(a.find("z").has_value());
}

TEST(Alphabet, PlainRejectsDuplicates) {
  EXPECT_THROW(Alphabet::plain({"a", "a"}), std::invalid_argument);
}

TEST(Alphabet, PlainRejectsEmpty) { EXPECT_THROW(Alphabet::plain({}), std::invalid_argument); }

TEST(Alphabet, PropBasedSizeIsPowerOfTwo) {
  auto a = Alphabet::of_props({"p", "q"});
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(a.prop_based());
  EXPECT_EQ(a.prop_count(), 2u);
}

TEST(Alphabet, PropHolds) {
  auto a = Alphabet::of_props({"p", "q"});
  // Symbol 0b01 = {p}, 0b10 = {q}, 0b11 = {p,q}.
  EXPECT_TRUE(a.holds(1, 0));
  EXPECT_FALSE(a.holds(1, 1));
  EXPECT_TRUE(a.holds(3, 0));
  EXPECT_TRUE(a.holds(3, 1));
  EXPECT_FALSE(a.holds(0, 0));
}

TEST(Alphabet, PropNames) {
  auto a = Alphabet::of_props({"p", "q"});
  EXPECT_EQ(a.name(0), "{}");
  EXPECT_EQ(a.name(1), "{p}");
  EXPECT_EQ(a.name(3), "{p,q}");
  EXPECT_EQ(a.prop_index("q"), std::size_t{1});
  EXPECT_FALSE(a.prop_index("r").has_value());
}

TEST(Alphabet, PropCountLimit) {
  // 7 props (128 symbols) is within the limit; 11 is out.
  EXPECT_EQ(Alphabet::of_props({"a", "b", "c", "d", "e", "f", "g"}).size(), 128u);
  EXPECT_THROW(Alphabet::of_props({"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"}),
               std::invalid_argument);
}

TEST(Alphabet, Equality) {
  EXPECT_EQ(Alphabet::plain({"a", "b"}), Alphabet::plain({"a", "b"}));
  EXPECT_NE(Alphabet::plain({"a", "b"}), Alphabet::plain({"b", "a"}));
  EXPECT_NE(Alphabet::plain({"a", "b"}), Alphabet::of_props({"x"}));
}

TEST(Word, ParseAndPrintRoundTrip) {
  auto a = Alphabet::plain({"a", "b"});
  Word w = parse_word("abba", a);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(to_string(w, a), "abba");
  EXPECT_EQ(to_string(Word{}, a), "ε");
}

TEST(Word, ParseUnknownLetterThrows) {
  auto a = Alphabet::plain({"a", "b"});
  EXPECT_THROW(parse_word("abc", a), std::invalid_argument);
}

TEST(Word, PropBasedPrinting) {
  auto a = Alphabet::of_props({"p", "q"});
  Word w{0, 1, 3};
  EXPECT_EQ(to_string(w, a), "{}·{p}·{p,q}");
}

TEST(Word, IsPrefix) {
  auto a = Alphabet::plain({"a", "b"});
  EXPECT_TRUE(is_prefix(parse_word("ab", a), parse_word("abb", a)));
  EXPECT_TRUE(is_prefix(Word{}, parse_word("a", a)));
  EXPECT_TRUE(is_prefix(parse_word("ab", a), parse_word("ab", a)));
  EXPECT_FALSE(is_prefix(parse_word("ba", a), parse_word("abb", a)));
  EXPECT_FALSE(is_prefix(parse_word("abb", a), parse_word("ab", a)));
}

}  // namespace
}  // namespace mph::lang
