// Every diagnostic code in the registry, demonstrated: for each code a
// crafted bad input that fires exactly it (asserted via has_code), plus
// clean inputs that produce zero diagnostics — the linter must not cry wolf
// on well-formed models, automata or specifications.
#include <gtest/gtest.h>

#include "src/analysis/automaton_lint.hpp"
#include "src/analysis/fts_lint.hpp"
#include "src/analysis/passes.hpp"
#include "src/analysis/spec_lint.hpp"
#include "src/core/paper_checks.hpp"
#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/ast.hpp"
#include "src/ltl/syntactic.hpp"

namespace mph {
namespace {

using analysis::DiagnosticEngine;
using analysis::Severity;
using omega::Acceptance;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

// ---------------------------------------------------------------- engine --

TEST(Diagnostics, RegistryIsCompleteAndQueryable) {
  auto codes = analysis::code_registry();
  EXPECT_GE(codes.size(), 25u);
  for (const auto& info : codes) {
    const auto* found = analysis::find_code(info.code);
    ASSERT_NE(found, nullptr) << info.code;
    EXPECT_EQ(found->code, info.code);
  }
  EXPECT_EQ(analysis::find_code("MPH-X999"), nullptr);
}

TEST(Diagnostics, EmitCountsAndRenders) {
  DiagnosticEngine e;
  auto& d = e.emit("MPH-A004", "toy", "the automaton accepts no word at all");
  d.witness = "w";
  e.emit("MPH-A001", "toy", "1 state(s) unreachable");
  EXPECT_TRUE(e.has_errors());
  EXPECT_EQ(e.count(Severity::Error), 1u);
  EXPECT_EQ(e.count(Severity::Warning), 1u);
  EXPECT_EQ(e.count_code("MPH-A004"), 1u);
  EXPECT_TRUE(e.has_code("MPH-A001"));
  EXPECT_FALSE(e.has_code("MPH-A002"));
  auto text = e.to_text();
  EXPECT_NE(text.find("error MPH-A004 [toy]"), std::string::npos);
  EXPECT_NE(text.find("witness: w"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

TEST(Diagnostics, JsonIsEscapedAndStructured) {
  DiagnosticEngine e;
  e.emit("MPH-F006", "model \"m\"", "line1\nline2");
  auto json = e.to_json();
  EXPECT_NE(json.find("\"code\": \"MPH-F006\""), std::string::npos);
  EXPECT_NE(json.find("model \\\"m\\\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(json.find("fix_hint"), std::string::npos);  // empty fields omitted
}

TEST(Diagnostics, JsonEscapeCoversEveryControlCharacter) {
  // Regression net for the wire layer (docs/SERVE.md): mph-serve responses
  // and `--json` reports are parsed by strict JSON parsers that reject raw
  // control characters, so every one of the 32 ASCII controls must leave
  // json_escape in escaped form — the common ones as their short escapes,
  // the rest as \u00XX.
  std::string all;
  for (int c = 0; c < 0x20; ++c) all.push_back(static_cast<char>(c));
  const std::string out = analysis::json_escape(all);
  for (char c : out)
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character survived escaping";
  EXPECT_NE(out.find("\\n"), std::string::npos);
  EXPECT_NE(out.find("\\r"), std::string::npos);
  EXPECT_NE(out.find("\\t"), std::string::npos);
  EXPECT_NE(out.find("\\u0000"), std::string::npos);
  EXPECT_NE(out.find("\\u001f"), std::string::npos);
  // Quotes and backslashes double; plain text and 8-bit bytes pass through.
  EXPECT_EQ(analysis::json_escape("say \"hi\\\""), "say \\\"hi\\\\\\\"");
  EXPECT_EQ(analysis::json_escape("plain text"), "plain text");
}

TEST(Diagnostics, JsonWithEmbeddedControlsStaysOneLine) {
  // A counterexample trace smuggled into a witness used to be able to break
  // line-delimited consumers; the rendered document must stay one line with
  // no raw controls regardless of diagnostic content.
  DiagnosticEngine e;
  auto& d = e.emit("MPH-F006", "m\ro\nd\tel", "msg\x01with\x1f controls");
  d.witness = "s0 \n-> s1";
  const std::string json = e.to_json();
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_NE(json.find("m\\ro\\nd\\tel"), std::string::npos);
  EXPECT_NE(json.find("msg\\u0001with\\u001f controls"), std::string::npos);
  EXPECT_NE(json.find("s0 \\n-> s1"), std::string::npos);
}

TEST(Diagnostics, EmitRejectsUnknownCode) {
  DiagnosticEngine e;
  EXPECT_THROW(e.emit("MPH-Z001", "s", "m"), std::invalid_argument);
}

TEST(Passes, RegistryDispatchesBySubjectKind) {
  auto passes = analysis::registered_passes();
  EXPECT_GE(passes.size(), 7u);
  omega::DetOmega m(ab(), 1, 0, Acceptance::buchi(0));
  m.add_mark(0, 0);
  DiagnosticEngine e;
  analysis::run_passes(analysis::Subject::of(m, "toy"), e);
  EXPECT_EQ(e.count(Severity::Error), 0u);
  EXPECT_TRUE(e.has_code("MPH-A005"));  // single universal state
}

// ------------------------------------------------- deterministic automata --

TEST(AutomatonLint, CleanDetOmegaHasNoFindings) {
  // Inf(0) with the mark on a reachable state on a cycle: L = (a+b)^ω = Σ^ω?
  // No — keep it non-universal: mark only the a-loop state.
  omega::DetOmega m(ab(), 2, 0, Acceptance::buchi(0));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 1);
  m.add_mark(0, 0);
  DiagnosticEngine e;
  analysis::lint_automaton(m, "clean", e);
  EXPECT_EQ(e.diagnostics().size(), 0u) << e.to_text();
}

TEST(AutomatonLint, A001UnreachableStates) {
  omega::DetOmega m(ab(), 2, 0, Acceptance::buchi(0));
  m.add_mark(0, 0);  // state 1 keeps its initial self-loops, unreachable
  DiagnosticEngine e;
  analysis::lint_det_structure(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A001")) << e.to_text();
}

TEST(AutomatonLint, A002NonMinimalDeadRegion) {
  // 0 is accepting on its a-loop; b leads into a two-state dead chain.
  omega::DetOmega m(ab(), 3, 0, Acceptance::buchi(0));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 2);
  m.set_transition(1, 1, 2);
  m.set_transition(2, 0, 2);
  m.set_transition(2, 1, 2);
  m.add_mark(0, 0);
  DiagnosticEngine e;
  analysis::lint_det_language(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A002")) << e.to_text();
  EXPECT_FALSE(e.has_code("MPH-A004"));
}

TEST(AutomatonLint, A002NotEmittedForSingleTrap) {
  omega::DetOmega m(ab(), 2, 0, Acceptance::buchi(0));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);  // single dead sink: idiomatic, not a finding
  m.add_mark(0, 0);
  DiagnosticEngine e;
  analysis::lint_det_language(m, "toy", e);
  EXPECT_FALSE(e.has_code("MPH-A002")) << e.to_text();
}

TEST(AutomatonLint, A003MarkOnUnreachableState) {
  omega::DetOmega m(ab(), 2, 0, Acceptance::buchi(0));
  m.add_mark(0, 0);
  m.add_mark(1, 0);  // unreachable and marked
  DiagnosticEngine e;
  analysis::lint_det_structure(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A003")) << e.to_text();
}

TEST(AutomatonLint, A004EmptyLanguage) {
  omega::DetOmega m(ab(), 1, 0, Acceptance::buchi(0));  // mark 0 never placed
  DiagnosticEngine e;
  analysis::lint_det_language(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A004")) << e.to_text();
}

TEST(AutomatonLint, A005UniversalLanguage) {
  omega::DetOmega m(ab(), 1, 0, Acceptance::buchi(0));
  m.add_mark(0, 0);
  DiagnosticEngine e;
  analysis::lint_det_language(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A005")) << e.to_text();
}

TEST(AutomatonLint, A006AcceptanceMentionsUnplacedMark) {
  omega::DetOmega m(ab(), 1, 0,
                    Acceptance::disj(Acceptance::inf(0), Acceptance::inf(1)));
  m.add_mark(0, 0);  // mark 1 placed nowhere
  DiagnosticEngine e;
  analysis::lint_det_structure(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A006")) << e.to_text();
}

TEST(AutomatonLint, A007WeakAutomaton) {
  // Two uniformly-accepting SCCs, one rejecting sink; acceptance mentions
  // two marks though per-SCC constancy makes the condition overpowered.
  auto abc = lang::Alphabet::plain({"a", "b", "c"});
  omega::DetOmega m(abc, 3, 0,
                    Acceptance::disj(Acceptance::inf(0), Acceptance::inf(1)));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(0, 2, 2);
  m.set_transition(1, 0, 1);
  m.set_transition(1, 1, 1);
  m.set_transition(1, 2, 2);
  m.set_transition(2, 0, 2);
  m.set_transition(2, 1, 2);
  m.set_transition(2, 2, 2);
  m.add_mark(0, 0);
  m.add_mark(1, 1);
  DiagnosticEngine e;
  analysis::lint_det_scc(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A007")) << e.to_text();
}

TEST(AutomatonLint, A011AcceptanceShapeDowngrade) {
  // Last-symbol tracker with Rabin acceptance Inf(0) ∧ Fin(1): the language
  // is "finitely many b" = ◇□a — persistence, recognizable co-Büchi.
  omega::DetOmega m(ab(), 2, 0,
                    Acceptance::conj(Acceptance::inf(0), Acceptance::fin(1)));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 1);
  m.add_mark(0, 0);
  m.add_mark(1, 1);
  DiagnosticEngine e;
  analysis::lint_det_scc(m, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A011")) << e.to_text();
}

// ------------------------------------------------------------------- NBA --

TEST(AutomatonLint, CleanNbaHasNoFindings) {
  omega::Nba n(ab());
  auto q0 = n.add_state();
  n.add_initial(q0);
  n.set_accepting(q0);
  n.add_edge(q0, 0, q0);
  n.add_edge(q0, 1, q0);
  DiagnosticEngine e;
  analysis::lint_automaton(n, "clean", e);
  EXPECT_EQ(e.diagnostics().size(), 0u) << e.to_text();
}

TEST(AutomatonLint, A008NbaWithoutInitialState) {
  omega::Nba n(ab());
  n.add_state();
  DiagnosticEngine e;
  analysis::lint_automaton(n, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A008"));
  EXPECT_TRUE(e.has_errors());
}

TEST(AutomatonLint, A009DuplicateEdges) {
  omega::Nba n(ab());
  auto q0 = n.add_state();
  n.add_initial(q0);
  n.set_accepting(q0);
  n.add_edge(q0, 0, q0);
  n.add_edge(q0, 0, q0);  // duplicate
  n.add_edge(q0, 1, q0);
  DiagnosticEngine e;
  analysis::lint_automaton(n, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A009")) << e.to_text();
}

TEST(AutomatonLint, A010NonTotalNba) {
  omega::Nba n(ab());
  auto q0 = n.add_state();
  n.add_initial(q0);
  n.set_accepting(q0);
  n.add_edge(q0, 0, q0);  // no edge on b
  DiagnosticEngine e;
  analysis::lint_automaton(n, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A010")) << e.to_text();
}

TEST(AutomatonLint, NbaEmptyAndDeadRegion) {
  omega::Nba n(ab());
  auto q0 = n.add_state();
  auto q1 = n.add_state();
  n.add_initial(q0);
  n.add_edge(q0, 0, q1);
  n.add_edge(q1, 0, q1);  // no accepting state anywhere
  DiagnosticEngine e;
  analysis::lint_automaton(n, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-A004"));

  // Dead region ≥ 2: accepting loop plus a two-state dead tail.
  omega::Nba n2(ab());
  auto p0 = n2.add_state();
  auto p1 = n2.add_state();
  auto p2 = n2.add_state();
  n2.add_initial(p0);
  n2.set_accepting(p0);
  n2.add_edge(p0, 0, p0);
  n2.add_edge(p0, 1, p1);
  n2.add_edge(p1, 0, p2);
  n2.add_edge(p1, 1, p2);
  n2.add_edge(p2, 0, p2);
  n2.add_edge(p2, 1, p2);
  DiagnosticEngine e2;
  analysis::lint_automaton(n2, "toy", e2);
  EXPECT_TRUE(e2.has_code("MPH-A002")) << e2.to_text();
}

// ------------------------------------------------------------------- DFA --

TEST(AutomatonLint, CleanDfaHasNoFindings) {
  lang::Dfa d(ab(), 2, 0);
  d.set_transition(0, 0, 1);
  d.set_transition(0, 1, 0);
  d.set_transition(1, 0, 0);
  d.set_transition(1, 1, 1);
  d.set_accepting(1);
  DiagnosticEngine e;
  analysis::lint_automaton(d, "clean", e);
  EXPECT_EQ(e.diagnostics().size(), 0u) << e.to_text();
}

TEST(AutomatonLint, DfaEmptyUniversalUnreachableTrap) {
  lang::Dfa empty(ab(), 1, 0);  // no accepting state
  DiagnosticEngine e1;
  analysis::lint_automaton(empty, "toy", e1);
  EXPECT_TRUE(e1.has_code("MPH-A004"));

  lang::Dfa universal(ab(), 2, 0);  // state 1 unreachable; 0 accepts all
  universal.set_accepting(0);
  DiagnosticEngine e2;
  analysis::lint_automaton(universal, "toy", e2);
  EXPECT_TRUE(e2.has_code("MPH-A005"));
  EXPECT_TRUE(e2.has_code("MPH-A001"));

  lang::Dfa trap(ab(), 3, 0);  // two-state reject-trap chain after b
  trap.set_accepting(0);
  trap.set_transition(0, 0, 0);
  trap.set_transition(0, 1, 1);
  trap.set_transition(1, 0, 2);
  trap.set_transition(1, 1, 2);
  trap.set_transition(2, 0, 2);
  trap.set_transition(2, 1, 2);
  DiagnosticEngine e3;
  analysis::lint_automaton(trap, "toy", e3);
  EXPECT_TRUE(e3.has_code("MPH-A012")) << e3.to_text();
}

// ------------------------------------------------------------------- FTS --

TEST(FtsLint, CleanModelHasNoFindings) {
  auto prog = fts::programs::peterson();
  DiagnosticEngine e;
  analysis::lint_fts(prog.system, "peterson", e);
  EXPECT_EQ(e.diagnostics().size(), 0u) << e.to_text();
}

TEST(FtsLint, F001TrivialSystem) {
  fts::Fts no_vars;
  DiagnosticEngine e1;
  analysis::lint_fts(no_vars, "toy", e1);
  EXPECT_TRUE(e1.has_code("MPH-F001"));

  fts::Fts no_transitions;
  no_transitions.add_var("x", 0, 1, 0);
  DiagnosticEngine e2;
  analysis::lint_fts(no_transitions, "toy", e2);
  EXPECT_TRUE(e2.has_code("MPH-F001"));
}

TEST(FtsLint, F002F005DeadTransitionWithVacuousFairness) {
  fts::Fts sys;
  auto x = sys.add_var("x", 0, 1, 0);
  sys.add_transition("flip", fts::Fairness::None,
                     [](const fts::Valuation&) { return true; },
                     [x](fts::Valuation& v) { v[x] = 1 - v[x]; });
  sys.add_transition("never", fts::Fairness::Weak,
                     [x](const fts::Valuation& v) { return v[x] == 5; },  // out of domain
                     [](fts::Valuation&) {});
  DiagnosticEngine e;
  analysis::lint_fts(sys, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-F002")) << e.to_text();
  EXPECT_TRUE(e.has_code("MPH-F005")) << e.to_text();
}

TEST(FtsLint, F003ConstantVariable) {
  fts::Fts sys;
  auto x = sys.add_var("x", 0, 1, 0);
  sys.add_var("frozen", 0, 3, 2);  // read by the guard, never assigned
  auto frozen = sys.var_index("frozen");
  sys.add_transition("flip", fts::Fairness::None,
                     [frozen](const fts::Valuation& v) { return v[frozen] == 2; },
                     [x](fts::Valuation& v) { v[x] = 1 - v[x]; });
  DiagnosticEngine e;
  analysis::lint_fts(sys, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-F003")) << e.to_text();
  EXPECT_FALSE(e.has_code("MPH-F004")) << e.to_text();  // it IS read
}

TEST(FtsLint, F004WriteOnlyVariable) {
  fts::Fts sys;
  auto x = sys.add_var("x", 0, 1, 0);
  auto log = sys.add_var("log", 0, 1, 0);  // written, never read
  sys.add_transition("flip", fts::Fairness::None,
                     [](const fts::Valuation&) { return true; },
                     [x, log](fts::Valuation& v) {
                       v[x] = 1 - v[x];
                       v[log] = 1;
                     });
  DiagnosticEngine e;
  analysis::lint_fts(sys, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-F004")) << e.to_text();
  EXPECT_FALSE(e.has_code("MPH-F003")) << e.to_text();  // it changes value
}

TEST(FtsLint, F006Deadlock) {
  fts::Fts sys;
  auto x = sys.add_var("x", 0, 2, 0);
  sys.add_transition("step", fts::Fairness::None,
                     [x](const fts::Valuation& v) { return v[x] < 2; },
                     [x](fts::Valuation& v) { v[x] += 1; });
  DiagnosticEngine e;
  analysis::lint_fts(sys, "toy", e);
  EXPECT_TRUE(e.has_code("MPH-F006")) << e.to_text();
  EXPECT_NE(e.to_text().find("x=2"), std::string::npos);  // witness valuation
}

TEST(FtsLint, F007ExplorationBudgetExceeded) {
  auto prog = fts::programs::peterson();
  DiagnosticEngine e;
  analysis::FtsLintOptions opts;
  opts.max_states = 2;
  analysis::lint_fts(prog.system, "peterson", e, opts);
  EXPECT_TRUE(e.has_code("MPH-F007")) << e.to_text();
}

// ------------------------------------------------------------------ spec --

std::vector<ltl::Formula> parse_all(const std::vector<std::string>& texts) {
  std::vector<ltl::Formula> out;
  for (const auto& t : texts) out.push_back(ltl::parse_formula(t));
  return out;
}

TEST(SpecLint, CleanSpecificationHasNoFindings) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  auto r = analysis::lint_spec(parse_all({"G !(c1 & c2)", "G(t1 -> F c1)"}), e, opts);
  EXPECT_EQ(e.diagnostics().size(), 0u) << e.to_text();
  EXPECT_TRUE(r.semantic_ran);
  ASSERT_TRUE(r.model.has_value());  // the conjunction is satisfiable
}

TEST(SpecLint, S001UnsatisfiableRequirement) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  analysis::lint_spec(parse_all({"G p & F !p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S001")) << e.to_text();
  EXPECT_TRUE(e.has_errors());
}

TEST(SpecLint, S002Tautology) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  analysis::lint_spec(parse_all({"G p | F !p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S002")) << e.to_text();
}

TEST(SpecLint, S003RedundantRequirement) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  analysis::lint_spec(parse_all({"G(p & q)", "G p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S003")) << e.to_text();
}

TEST(SpecLint, S004SyntacticSemanticDowngrade) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  auto r = analysis::lint_spec(parse_all({"G F p & F G p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S004")) << e.to_text();
  ASSERT_TRUE(r.items[0].semantic.has_value());
  EXPECT_EQ(r.items[0].semantic->lowest(), core::PropertyClass::Persistence);
}

TEST(SpecLint, S005ContradictoryConjunction) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  auto r = analysis::lint_spec(parse_all({"G p", "F !p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S005")) << e.to_text();
  EXPECT_FALSE(e.has_code("MPH-S001"));  // each requirement alone is fine
  EXPECT_FALSE(r.model.has_value());
}

TEST(SpecLint, S006AllSafetyTrapAndS007Checklist) {
  DiagnosticEngine e;
  auto r = analysis::lint_spec(parse_all({"G !(c1 & c2)", "G(c1 -> O t1)"}), e);
  EXPECT_TRUE(e.has_code("MPH-S006")) << e.to_text();
  EXPECT_EQ(e.count_code("MPH-S007"), 5u) << e.to_text();  // all but safety missing
  ASSERT_TRUE(r.model.has_value());  // the do-nothing system — trap, not bug
}

TEST(SpecLint, S008OutsideFragment) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  auto r = analysis::lint_spec(parse_all({"F(p & X(!p & X p))"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S008")) << e.to_text();
  EXPECT_FALSE(r.items[0].semantic.has_value());
  EXPECT_EQ(r.items[0].best().lowest(), core::PropertyClass::Guarantee);
}

TEST(SpecLint, S009StructuralDuplicate) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  analysis::lint_spec(parse_all({"G p", "G p"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S009")) << e.to_text();
}

TEST(SpecLint, S010TooManyAtomsSkipsSemantic) {
  DiagnosticEngine e;
  analysis::SpecLintOptions opts;
  opts.checklist = false;
  opts.max_atoms = 1;
  auto r = analysis::lint_spec(parse_all({"G(p -> F q)"}), e, opts);
  EXPECT_TRUE(e.has_code("MPH-S010")) << e.to_text();
  EXPECT_FALSE(r.semantic_ran);
  EXPECT_FALSE(r.items[0].semantic.has_value());
}

TEST(SpecLint, TextFrontEndParsesAndLints) {
  DiagnosticEngine e;
  auto r = analysis::lint_spec_texts({"G !(c1 & c2)", "G(t1 -> F c1)"}, e);
  EXPECT_FALSE(e.has_code("MPH-S006"));
  EXPECT_EQ(r.items.size(), 2u);
  EXPECT_THROW(analysis::lint_spec_texts({"G ("}, e), std::invalid_argument);
}

// ------------------------------------------------ checker / paper wiring --

TEST(CheckerDiagnostics, V002AndV003OnViolation) {
  auto prog = fts::programs::trivial_mutex();
  DiagnosticEngine e;
  auto result = fts::check(prog.system, ltl::parse_formula("G(t1 -> F c1)"),
                           prog.atoms, 200000, &e);
  EXPECT_FALSE(result.holds);
  EXPECT_TRUE(e.has_code("MPH-V002")) << e.to_text();  // product-size note
  EXPECT_TRUE(e.has_code("MPH-V003")) << e.to_text();  // violation warning
  EXPECT_FALSE(e.has_code("MPH-V001"));  // hierarchy fragment: no fallback
}

TEST(CheckerDiagnostics, V001TableauFallback) {
  auto prog = fts::programs::peterson();
  DiagnosticEngine e;
  auto result = fts::check(prog.system, ltl::parse_formula("F(t1 & X(!t1 & X t1))"),
                           prog.atoms, 200000, &e);
  EXPECT_TRUE(e.has_code("MPH-V001")) << e.to_text();
  (void)result;
}

TEST(PaperCheckDiagnostics, P001MultiPairUnsoundness) {
  omega::DetOmega m(ab(), 2, 0, Acceptance::t());
  m.set_transition(0, 0, 1);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 0);
  std::vector<omega::StreettPair> two_pairs{{{0}, {}}, {{1}, {}}};
  DiagnosticEngine e;
  core::paper::literal_safety_check(m, two_pairs, &e);
  EXPECT_TRUE(e.has_code("MPH-P001")) << e.to_text();

  DiagnosticEngine e1;
  core::paper::literal_safety_check(m, {{{0}, {}}}, &e1);
  EXPECT_FALSE(e1.has_code("MPH-P001"));  // single pair: the paper is right

  DiagnosticEngine e2;
  core::paper::literal_guarantee_check(m, two_pairs, &e2);
  EXPECT_TRUE(e2.has_code("MPH-P001"));
}

// -------------------------------------------------------- normalize-lint --

TEST(NormalizeLint, N001ExactClassWithWitness) {
  std::vector<ltl::Formula> spec{ltl::parse_formula("G(p -> F q)")};
  DiagnosticEngine e;
  auto r = analysis::lint_normalize(spec, e);
  EXPECT_TRUE(e.has_code("MPH-N001")) << e.to_text();
  ASSERT_EQ(r.exact_count, 1u);
  ASSERT_TRUE(r.items[0].exact.has_value());
  EXPECT_TRUE(r.items[0].exact->recurrence);
  EXPECT_TRUE(r.items[0].normal_form.has_value());
}

TEST(NormalizeLint, N002CoarserSyntacticClassSuggestsRewrite) {
  // F(p ∧ Fq) is exactly guarantee, but no syntactic rule shows it.
  std::vector<ltl::Formula> spec{ltl::parse_formula("F(p & F q)")};
  DiagnosticEngine e;
  auto r = analysis::lint_normalize(spec, e);
  ASSERT_EQ(r.exact_count, 1u);
  EXPECT_TRUE(r.items[0].exact->guarantee);
  if (!ltl::syntactic_classification(spec[0]).guarantee) {
    EXPECT_TRUE(e.has_code("MPH-N002")) << e.to_text();
  }
}

TEST(NormalizeLint, N003BudgetStopNeverMisreports) {
  std::vector<ltl::Formula> spec{ltl::parse_formula("F(p & (q U p)) & G F(p R q)")};
  DiagnosticEngine e;
  analysis::NormalizeLintOptions opt;
  opt.normalize.budget = Budget().with_state_cap(3);
  auto r = analysis::lint_normalize(spec, e, opt);
  EXPECT_TRUE(e.has_code("MPH-N003")) << e.to_text();
  EXPECT_FALSE(e.has_code("MPH-N001"));
  EXPECT_EQ(r.budget_count, 1u);
  EXPECT_FALSE(r.items[0].exact.has_value());
}

TEST(NormalizeLint, RegistryRunsNormalizePassOnSpecSubjects) {
  std::vector<ltl::Formula> spec{ltl::parse_formula("F(p & F q)")};
  DiagnosticEngine e;
  analysis::run_passes(analysis::Subject::of(spec, "spec"), e);
  EXPECT_TRUE(e.has_code("MPH-N001")) << e.to_text();
}

}  // namespace
}  // namespace mph
