// The Budget/Outcome contract (docs/BUDGETS.md) and its plumbing through
// the budget-governed constructions outside the checker: the subset
// construction, the LTL tableau, and the counter-freedom monoid. Checker
// budgets are covered by checker_engine_test.cpp; the fuzz runner's
// per-iteration budgets by fuzz_test.cpp.
#include <gtest/gtest.h>

#include <stop_token>

#include "src/lang/nfa.hpp"
#include "src/ltl/to_nba.hpp"
#include "src/omega/counter_free.hpp"
#include "src/support/budget.hpp"

namespace mph {
namespace {

TEST(BudgetTest, DefaultIsUnlimited) {
  Budget b;
  EXPECT_TRUE(b.unlimited());
  EXPECT_FALSE(b.has_state_cap());
  EXPECT_FALSE(b.has_deadline());
  EXPECT_EQ(b.poll(), Outcome::Complete);
  EXPECT_EQ(b.admit(0), Outcome::Complete);
  EXPECT_EQ(b.admit(1'000'000'000), Outcome::Complete);
}

TEST(BudgetTest, StateCapAdmitsExactlyCapElements) {
  Budget b;
  b.with_state_cap(3);
  EXPECT_FALSE(b.unlimited());
  EXPECT_EQ(b.admit(0), Outcome::Complete);
  EXPECT_EQ(b.admit(2), Outcome::Complete);
  EXPECT_EQ(b.admit(3), Outcome::BudgetStates);

  Budget zero;
  zero.with_state_cap(0);
  EXPECT_EQ(zero.admit(0), Outcome::BudgetStates);
  // poll() ignores the cap: it only watches cancellation and the clock.
  EXPECT_EQ(zero.poll(), Outcome::Complete);
}

TEST(BudgetTest, DeadlineAndCancellation) {
  Budget expired;
  expired.with_deadline(Budget::Clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(expired.poll(), Outcome::BudgetDeadline);
  EXPECT_EQ(expired.admit(0), Outcome::BudgetDeadline);

  Budget future;
  future.with_deadline_after(std::chrono::hours(1));
  EXPECT_TRUE(future.has_deadline());
  EXPECT_EQ(future.poll(), Outcome::Complete);

  std::stop_source source;
  Budget cancellable;
  cancellable.with_stop_token(source.get_token());
  EXPECT_EQ(cancellable.poll(), Outcome::Complete);
  source.request_stop();
  EXPECT_EQ(cancellable.poll(), Outcome::Cancelled);
  // Cancellation outranks the deadline.
  cancellable.with_deadline(Budget::Clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(cancellable.poll(), Outcome::Cancelled);
}

TEST(BudgetTest, RequireThrowsBudgetExhaustedCarryingTheOutcome) {
  Budget b;
  b.with_state_cap(2);
  EXPECT_NO_THROW(b.require(0));
  EXPECT_NO_THROW(b.require(1));
  try {
    b.require(2);
    FAIL() << "require past the cap must throw";
  } catch (const BudgetExhausted& e) {
    EXPECT_EQ(e.outcome(), Outcome::BudgetStates);
  }
  // Deliberately not an invalid_argument/logic_error: validation catch
  // sites must not swallow budget exhaustion.
  EXPECT_THROW(b.require(5), std::runtime_error);
}

TEST(BudgetTest, OutcomeSeverityAndNames) {
  EXPECT_EQ(worst(Outcome::Complete, Outcome::BudgetStates), Outcome::BudgetStates);
  EXPECT_EQ(worst(Outcome::BudgetDeadline, Outcome::BudgetStates),
            Outcome::BudgetDeadline);
  EXPECT_EQ(worst(Outcome::Cancelled, Outcome::Complete), Outcome::Cancelled);
  EXPECT_TRUE(is_complete(Outcome::Complete));
  EXPECT_FALSE(is_complete(Outcome::BudgetDeadline));
  EXPECT_EQ(to_string(Outcome::Complete), "complete");
  EXPECT_EQ(to_string(Outcome::BudgetStates), "budget-states");
  EXPECT_EQ(to_string(Outcome::BudgetDeadline), "budget-deadline");
  EXPECT_EQ(to_string(Outcome::Cancelled), "cancelled");
}

lang::Nfa ends_in_b() {
  lang::Nfa n(lang::Alphabet::plain({"a", "b"}));
  auto q0 = n.add_state();
  auto q1 = n.add_state();
  n.set_initial(q0);
  n.add_edge(q0, 0, q0);
  n.add_edge(q0, 1, q0);
  n.add_edge(q0, 1, q1);
  n.set_accepting(q1);
  return n;
}

TEST(BudgetTest, DeterminizeUnlimitedMatchesLegacy) {
  lang::Nfa n = ends_in_b();
  lang::Dfa legacy = determinize(n);
  Budgeted<lang::Dfa> governed = determinize(n, Budget());
  ASSERT_TRUE(governed.complete());
  ASSERT_TRUE(governed.value.has_value());
  EXPECT_EQ(governed.value->state_count(), legacy.state_count());
  for (const char* w : {"", "a", "b", "ab", "ba", "abab", "abba"})
    EXPECT_EQ(governed.value->accepts_text(w), legacy.accepts_text(w)) << w;
}

TEST(BudgetTest, DeterminizeReportsExhaustionWithoutAValue) {
  lang::Nfa n = ends_in_b();
  Budgeted<lang::Dfa> capped = determinize(n, Budget().with_state_cap(1));
  EXPECT_EQ(capped.outcome, Outcome::BudgetStates);
  EXPECT_FALSE(capped.value.has_value());

  Budgeted<lang::Dfa> expired =
      determinize(n, Budget().with_deadline(Budget::Clock::now() - std::chrono::seconds(1)));
  EXPECT_EQ(expired.outcome, Outcome::BudgetDeadline);
  EXPECT_FALSE(expired.value.has_value());
}

TEST(BudgetTest, ToNbaUnderBudget) {
  auto alphabet = lang::Alphabet::of_props({"p", "q"});
  auto f = ltl::parse_formula("p U q");
  omega::Nba legacy = ltl::to_nba(f, alphabet);
  Budgeted<omega::Nba> governed = ltl::to_nba(f, alphabet, Budget());
  ASSERT_TRUE(governed.complete());
  EXPECT_EQ(governed.value->state_count(), legacy.state_count());

  Budgeted<omega::Nba> capped = ltl::to_nba(f, alphabet, Budget().with_state_cap(1));
  EXPECT_EQ(capped.outcome, Outcome::BudgetStates);
  EXPECT_FALSE(capped.value.has_value());

  Budgeted<omega::Nba> expired = ltl::to_nba(
      f, alphabet, Budget().with_deadline(Budget::Clock::now() - std::chrono::seconds(1)));
  EXPECT_EQ(expired.outcome, Outcome::BudgetDeadline);

  // Structural errors stay exceptions even with a budget: past operators are
  // rejected up front, not reported as an outcome.
  EXPECT_THROW(ltl::to_nba(ltl::parse_formula("Y p"), alphabet, Budget()),
               std::invalid_argument);
}

TEST(BudgetTest, CounterFreedomIsTriState) {
  auto sigma = lang::Alphabet::plain({"a", "b"});
  // "Even number of a's" is the canonical counter.
  lang::Dfa even(sigma, 2, 0);
  even.set_transition(0, 0, 1);
  even.set_transition(1, 0, 0);
  even.set_accepting(0);
  EXPECT_EQ(omega::counter_freedom(even), omega::CounterFreedom::NotCounterFree);

  // a-then-b chain: counter-free, monoid bigger than two elements.
  lang::Dfa chain(sigma, 3, 0);
  chain.set_transition(0, 0, 1);
  chain.set_transition(1, 1, 2);
  chain.set_accepting(2);
  EXPECT_EQ(omega::counter_freedom(chain), omega::CounterFreedom::CounterFree);
  EXPECT_EQ(omega::counter_freedom(chain, Budget().with_state_cap(2)),
            omega::CounterFreedom::Unknown);
  // Same seed, same budget, same verdict: the enumeration order is fixed.
  EXPECT_EQ(omega::counter_freedom(chain, Budget().with_state_cap(2)),
            omega::CounterFreedom::Unknown);
  // The legacy boolean wrapper refuses to guess on Unknown.
  EXPECT_THROW(omega::is_counter_free(chain, /*max_monoid=*/2), std::invalid_argument);

  EXPECT_EQ(omega::to_string(omega::CounterFreedom::CounterFree), "counter-free");
  EXPECT_EQ(omega::to_string(omega::CounterFreedom::NotCounterFree), "not-counter-free");
  EXPECT_EQ(omega::to_string(omega::CounterFreedom::Unknown), "unknown-budget");
}

}  // namespace
}  // namespace mph
