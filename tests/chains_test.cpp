// Wagner chain analysis: the reactivity (Streett) index, its Rabin dual, and
// the obligation alternation grading, on the canonical strictness families.
#include <gtest/gtest.h>

#include "src/core/chains.hpp"
#include "src/core/classify.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/operators.hpp"
#include "src/support/rng.hpp"

namespace mph::core {
namespace {

using lang::compile_regex;
using omega::Acceptance;
using omega::DetOmega;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

/// "The highest letter seen infinitely often has even index" over an
/// alphabet of 2n letters — the canonical Wagner witness with Streett chain
/// exactly n. States remember the last letter; any letter set is a loop.
DetOmega parity_language(std::size_t n) {
  std::vector<std::string> letters;
  for (std::size_t i = 0; i < 2 * n; ++i) letters.push_back("l" + std::to_string(i));
  auto sigma = lang::Alphabet::plain(std::move(letters));
  // Acceptance over marks 0..2n-1 (mark i on state i): the max mark seen
  // infinitely often is odd-indexed (letters l1, l3, ... are "good" so that
  // B={l0} ⊂ J={l0,l1} ⊂ ... alternates starting rejecting).
  // acc = max-mark-is-odd: ⋁_{odd i} (Inf(i) ∧ ⋀_{j>i} Fin(j)).
  Acceptance acc = Acceptance::f();
  for (std::size_t i = 1; i < 2 * n; i += 2) {
    Acceptance clause = Acceptance::inf(static_cast<omega::Mark>(i));
    for (std::size_t j = i + 1; j < 2 * n; ++j)
      clause = Acceptance::conj(std::move(clause), Acceptance::fin(static_cast<omega::Mark>(j)));
    acc = Acceptance::disj(std::move(acc), std::move(clause));
  }
  DetOmega m(sigma, 2 * n, 0, std::move(acc));
  for (omega::State q = 0; q < 2 * n; ++q) {
    m.add_mark(q, static_cast<omega::Mark>(q));
    for (omega::Symbol s = 0; s < 2 * n; ++s) m.set_transition(q, s, s);
  }
  return m;
}

/// Product automaton for ⋀_{i<n} (□pᵢ ∨ ◇qᵢ) over 2n propositions —
/// the obligation hierarchy witness with independent propositions.
DetOmega obligation_family(std::size_t n) {
  std::vector<std::string> props;
  for (std::size_t i = 0; i < n; ++i) {
    props.push_back("p" + std::to_string(i));
    props.push_back("q" + std::to_string(i));
  }
  auto sigma = lang::Alphabet::of_props(props);
  // Per factor i: state 0 = p held so far, no q (accepting);
  //              state 1 = violated p before q (rejecting);
  //              state 2 = q seen (accepting, absorbing).
  // Product state encodes all factors base 3.
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= 3;
  Acceptance acc = Acceptance::t();
  for (std::size_t i = 0; i < n; ++i)
    acc = Acceptance::conj(std::move(acc), Acceptance::fin(static_cast<omega::Mark>(i)));
  DetOmega m(sigma, total, 0, std::move(acc));
  for (omega::State q = 0; q < total; ++q) {
    std::vector<int> dig(n);
    {
      omega::State rest = q;
      for (std::size_t i = 0; i < n; ++i) {
        dig[i] = static_cast<int>(rest % 3);
        rest /= 3;
      }
    }
    for (std::size_t i = 0; i < n; ++i)
      if (dig[i] == 1) m.add_mark(q, static_cast<omega::Mark>(i));
    for (omega::Symbol s = 0; s < sigma.size(); ++s) {
      omega::State next = 0;
      std::size_t mult = 1;
      for (std::size_t i = 0; i < n; ++i) {
        const bool p = sigma.holds(s, 2 * i);
        const bool qq = sigma.holds(s, 2 * i + 1);
        int d = dig[i];
        if (d != 2) {
          if (qq)
            d = 2;
          else if (!p)
            d = 1;
        }
        next += static_cast<omega::State>(static_cast<std::size_t>(d) * mult);
        mult *= 3;
      }
      m.set_transition(q, s, next);
    }
  }
  return m;
}

TEST(Chains, SafetyAutomatonHasNoChains) {
  auto m = omega::op_a(compile_regex("a+b*", ab()));
  auto c = alternation_chains(m);
  EXPECT_EQ(c.streett_chain, 0u);
  EXPECT_EQ(c.rabin_chain, 0u);
}

TEST(Chains, RecurrenceHasStreettChainOne) {
  auto m = omega::op_r(compile_regex("(a*b)+", ab()));
  auto c = alternation_chains(m);
  EXPECT_EQ(c.streett_chain, 1u);
  EXPECT_EQ(c.rabin_chain, 0u);  // recurrence ⇔ accepting loops upward closed
}

TEST(Chains, PersistenceHasRabinChainOne) {
  auto m = omega::op_p(compile_regex("(a|b)*a", ab()));
  auto c = alternation_chains(m);
  EXPECT_EQ(c.streett_chain, 0u);
  EXPECT_EQ(c.rabin_chain, 1u);
}

TEST(Chains, ChainsAgreeWithLandweberTests) {
  // rabin_chain = 0 ⇔ recurrence; streett_chain = 0 ⇔ persistence.
  Rng rng(83);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 4);
    for (const DetOmega& m : {omega::op_r(phi), omega::op_p(phi),
                              union_of(omega::op_r(phi), omega::op_p(phi))}) {
      auto c = alternation_chains(m);
      EXPECT_EQ(c.rabin_chain == 0, is_recurrence(m));
      EXPECT_EQ(c.streett_chain == 0, is_persistence(m));
    }
  }
}

TEST(Chains, SimpleReactivityHasChainOne) {
  auto sigma = lang::Alphabet::plain({"a", "b", "c"});
  DetOmega m = union_of(omega::op_r(compile_regex("(a|b|c)*a", sigma)),
                        omega::op_p(compile_regex("(a|b|c)*b", sigma)));
  auto c = alternation_chains(m);
  EXPECT_EQ(c.streett_chain, 1u);
}

TEST(Chains, ParityFamilyHasExactStreettChain) {
  for (std::size_t n = 1; n <= 5; ++n) {
    auto m = parity_language(n);
    auto c = alternation_chains(m, /*max_scc_size=*/2 * n);
    EXPECT_EQ(c.streett_chain, n) << "n=" << n;
    // The dual chain is n-1 or n depending on the top value; here the
    // largest loop (all letters) has max letter l_{2n-1} (odd → accepting),
    // so rejecting-topped chains stop one short.
    EXPECT_EQ(c.rabin_chain, n - 1) << "n=" << n;
  }
}

TEST(Chains, SccSizeCapThrows) {
  auto m = parity_language(4);
  EXPECT_THROW(alternation_chains(m, /*max_scc_size=*/4), std::invalid_argument);
}

TEST(Chains, ObligationFamilyHasExactAlternation) {
  for (std::size_t n = 1; n <= 3; ++n) {
    auto m = obligation_family(n);
    EXPECT_TRUE(is_obligation(m)) << "n=" << n;
    EXPECT_EQ(obligation_chain(m), n) << "n=" << n;
  }
}

TEST(Chains, ObligationChainOfPureSafetyIsZero) {
  auto m = omega::op_a(compile_regex("a+b*", ab()));
  EXPECT_EQ(obligation_chain(m), 0u);
}

TEST(Chains, ObligationChainRejectsMixedScc) {
  // (a*b)^ω is not an obligation property: its single SCC has both
  // accepting and rejecting loops.
  auto m = omega::op_r(compile_regex("(a*b)+", ab()));
  EXPECT_THROW(obligation_chain(m), std::invalid_argument);
}

TEST(Chains, IndexConvenienceWrappers) {
  // streett_index/rabin_index floor at 1 (even chain-0 languages need one
  // pair to write down); is_simple_reactivity ⇔ streett_chain ≤ 1.
  auto safety = omega::op_a(compile_regex("a+b*", ab()));
  EXPECT_EQ(streett_index(safety), 1u);
  EXPECT_EQ(rabin_index(safety), 1u);
  EXPECT_TRUE(is_simple_reactivity(safety));
  auto sigma3 = lang::Alphabet::plain({"a", "b", "c"});
  DetOmega simple = union_of(omega::op_r(compile_regex("(a|b|c)*a", sigma3)),
                             omega::op_p(compile_regex("(a|b|c)*b", sigma3)));
  EXPECT_EQ(streett_index(simple), 1u);
  EXPECT_TRUE(is_simple_reactivity(simple));
  for (std::size_t n = 2; n <= 4; ++n) {
    auto m = parity_language(n);
    EXPECT_EQ(streett_index(m, 2 * n), n);
    EXPECT_EQ(rabin_index(m, 2 * n), n - 1);
    EXPECT_FALSE(is_simple_reactivity(m, 2 * n));
  }
}

TEST(Chains, GuaranteeObligationChainIsOne) {
  // E(Σ*b): rejecting pre-region reaching the accepting sink → one flip.
  auto m = omega::op_e(compile_regex("(a|b)*b", ab()));
  EXPECT_EQ(obligation_chain(m), 1u);
}

}  // namespace
}  // namespace mph::core
