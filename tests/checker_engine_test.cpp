// The on-the-fly engine internals, observed through CheckStats and the batch
// API: engine selection (nested DFS vs SCC), early exit strictly below the
// full product bound, NBA-fallback traces that replay, and check_all
// agreement with sequential check — sequentially and on a worker pool.
#include <gtest/gtest.h>

#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/patterns.hpp"

namespace mph::fts {
namespace {

using ltl::parse_formula;
using programs::Program;

/// Replays a counterexample as its atom word; true iff it falsifies `spec`.
bool replay_violates(const Program& prog, const ltl::Formula& spec,
                     const CheckResult& result) {
  if (result.holds || !result.counterexample || result.counterexample->loop.empty())
    return false;
  auto atom_names = spec.atoms();
  auto alphabet = lang::Alphabet::of_props(atom_names);
  auto symbol_of = [&](const Valuation& v) {
    lang::Symbol s = 0;
    for (std::size_t i = 0; i < atom_names.size(); ++i)
      if (prog.atoms.at(atom_names[i])(prog.system, v, StateGraph::kNone))
        s |= lang::Symbol{1} << i;
    return s;
  };
  omega::Lasso word;
  for (const auto& v : result.counterexample->prefix) word.prefix.push_back(symbol_of(v));
  for (const auto& v : result.counterexample->loop) word.loop.push_back(symbol_of(v));
  return !ltl::evaluates(spec, word, alphabet);
}

TEST(CheckStats, BasicFieldsAreConsistent) {
  Program prog = programs::peterson();
  auto result = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms);
  EXPECT_TRUE(result.holds);
  const auto& s = result.stats;
  EXPECT_GT(s.state_graph_nodes, 0u);
  EXPECT_GT(s.automaton_states, 0u);
  EXPECT_EQ(s.product_bound, s.state_graph_nodes * s.automaton_states);
  EXPECT_GE(s.product_bound, s.product_states);
  EXPECT_EQ(result.product_states, s.product_states);
  EXPECT_FALSE(s.nba_fallback);  // safety lies in the hierarchy fragment
  EXPECT_GE(s.explore_seconds, 0.0);
  EXPECT_GE(s.search_seconds, 0.0);
}

TEST(EngineSelection, BuchiShapedGoesOnTheFly) {
  Program prog = programs::peterson();
  // ¬(safety) is a guarantee (Inf acceptance) -> nested DFS.
  auto safety = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms);
  EXPECT_TRUE(safety.stats.on_the_fly);
  // ¬(response) is persistence (Fin acceptance) -> SCC good-loop engine.
  auto response = check(prog.system, parse_formula("G(t1 -> F c1)"), prog.atoms);
  EXPECT_FALSE(response.stats.on_the_fly);
  EXPECT_TRUE(response.holds);
}

TEST(EngineSelection, NormalizationRoutesNonSyntacticShapesToShortcuts) {
  Program prog = programs::peterson();
  CheckOptions opt;
  opt.class_dispatch = true;
  // ◇(t1 ∧ ◇c1) denotes a guarantee but is not written as one: the syntactic
  // classifier alone cannot route it, the ΔΓ-normalizer can.
  auto spec = parse_formula("F(t1 & F c1)");
  auto r = check(prog.system, spec, prog.atoms, opt);
  EXPECT_EQ(r.stats.class_source, ClassSource::Normalized);
  EXPECT_EQ(r.stats.engine, CheckEngine::GuaranteeDual);
  EXPECT_GT(r.stats.normalize_steps, 0u);
  // The verdict agrees with the general engine.
  CheckOptions full;
  full.class_dispatch = false;
  EXPECT_EQ(r.holds, check(prog.system, spec, prog.atoms, full).holds);

  // Syntactically-visible shapes keep the Syntactic source (no normalize).
  auto direct = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms, opt);
  EXPECT_EQ(direct.stats.class_source, ClassSource::Syntactic);
  EXPECT_EQ(direct.stats.engine, CheckEngine::SafetyPrefix);

  // normalize_steps = 0 turns the rescue off.
  CheckOptions off = opt;
  off.normalize_steps = 0;
  auto unrouted = check(prog.system, spec, prog.atoms, off);
  EXPECT_EQ(unrouted.stats.class_source, ClassSource::Syntactic);
  EXPECT_NE(unrouted.stats.engine, CheckEngine::GuaranteeDual);
  EXPECT_EQ(r.holds, unrouted.holds);
}

TEST(EarlyExit, ViolationStopsStrictlyBelowTheProductBound) {
  // Seeded violation: the naive dining protocol deadlocks. The nested DFS
  // must report it without interning the whole state-graph × automaton
  // product.
  Program prog = programs::dining_philosophers(3);
  auto spec = parse_formula("G !deadlock");
  auto result = check(prog.system, spec, prog.atoms);
  ASSERT_FALSE(result.holds);
  EXPECT_TRUE(result.stats.on_the_fly);
  EXPECT_LT(result.stats.product_states, result.stats.product_bound);
  EXPECT_TRUE(replay_violates(prog, spec, result));
}

TEST(EarlyExit, NbaFallbackViolationReplays) {
  // Outside the hierarchy fragment: the tableau NBA drives the same nested
  // DFS and its counterexample must still be genuine.
  Program prog = programs::dining_philosophers(2);
  auto spec = parse_formula("(F eat1) U deadlock");
  auto result = check(prog.system, spec, prog.atoms);
  ASSERT_FALSE(result.holds);
  EXPECT_TRUE(result.stats.nba_fallback);
  EXPECT_TRUE(result.stats.on_the_fly);
  EXPECT_LT(result.stats.product_states, result.stats.product_bound);
  EXPECT_TRUE(replay_violates(prog, spec, result));
}

TEST(EarlyExit, HoldingSpecExploresWithoutCounterexample) {
  Program prog = programs::peterson();
  auto result = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms);
  EXPECT_TRUE(result.holds);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_GT(result.stats.product_states, 0u);
}

std::vector<ltl::Formula> mixed_specs() {
  return {
      parse_formula("G !(c1 & c2)"),           // safety, holds
      parse_formula("G(t1 -> F c1)"),          // response (SCC engine)
      parse_formula("G !c1"),                  // safety, violated
      parse_formula("G F c1"),                 // recurrence, violated
      parse_formula("F(t1 & X(!t1 & X t1))"),  // NBA fallback
      ltl::patterns::accessibility("t2", "c2"),
  };
}

TEST(CheckAll, AgreesWithSequentialCheck) {
  Program prog = programs::peterson();
  auto specs = mixed_specs();
  auto batch = check_all(prog.system, specs, prog.atoms);
  ASSERT_EQ(batch.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    auto single = check(prog.system, specs[i], prog.atoms);
    EXPECT_EQ(batch[i].holds, single.holds) << specs[i].to_string();
    EXPECT_EQ(batch[i].stats.product_states, single.stats.product_states)
        << specs[i].to_string();
    EXPECT_EQ(batch[i].stats.on_the_fly, single.stats.on_the_fly) << specs[i].to_string();
    EXPECT_EQ(batch[i].counterexample.has_value(), single.counterexample.has_value());
    if (!batch[i].holds) {
      EXPECT_TRUE(replay_violates(prog, specs[i], batch[i]));
    }
  }
}

TEST(CheckAll, WorkerPoolMatchesSequentialBatch) {
  Program prog = programs::semaphore_mutex(3, Fairness::Strong);
  std::vector<ltl::Formula> specs;
  for (int i = 1; i <= 3; ++i) {
    specs.push_back(ltl::patterns::accessibility("t" + std::to_string(i),
                                                 "c" + std::to_string(i)));
    specs.push_back(parse_formula("G !c" + std::to_string(i)));
  }
  auto sequential = check_all(prog.system, specs, prog.atoms);
  CheckOptions options;
  options.threads = 4;
  auto threaded = check_all(prog.system, specs, prog.atoms, options);
  ASSERT_EQ(threaded.size(), sequential.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(threaded[i].holds, sequential[i].holds) << specs[i].to_string();
    EXPECT_EQ(threaded[i].stats.product_states, sequential[i].stats.product_states);
    if (!threaded[i].holds) {
      EXPECT_TRUE(replay_violates(prog, specs[i], threaded[i]));
    }
  }
}

TEST(CheckAll, ThreadedDiagnosticsMergeInSpecOrder) {
  Program prog = programs::peterson();
  auto specs = mixed_specs();
  analysis::DiagnosticEngine sequential_engine, threaded_engine;
  CheckOptions sequential_options;
  sequential_options.diagnostics = &sequential_engine;
  CheckOptions threaded_options;
  threaded_options.threads = 3;
  threaded_options.diagnostics = &threaded_engine;
  check_all(prog.system, specs, prog.atoms, sequential_options);
  check_all(prog.system, specs, prog.atoms, threaded_options);
  ASSERT_EQ(threaded_engine.size(), sequential_engine.size());
  for (std::size_t i = 0; i < threaded_engine.size(); ++i) {
    EXPECT_EQ(threaded_engine.diagnostics()[i].code, sequential_engine.diagnostics()[i].code);
    EXPECT_EQ(threaded_engine.diagnostics()[i].subject,
              sequential_engine.diagnostics()[i].subject);
  }
  EXPECT_TRUE(threaded_engine.has_code("MPH-V001"));
  EXPECT_TRUE(threaded_engine.has_code("MPH-V003"));
}

TEST(CheckAll, EmptyBatchAndErrors) {
  Program prog = programs::peterson();
  EXPECT_TRUE(check_all(prog.system, {}, prog.atoms).empty());
  std::vector<ltl::Formula> bad = {parse_formula("G nosuchatom")};
  EXPECT_THROW(check_all(prog.system, bad, prog.atoms), std::invalid_argument);
  CheckOptions threaded;
  threaded.threads = 2;
  std::vector<ltl::Formula> tiny = {parse_formula("G !(c1 & c2)"),
                                    parse_formula("G !c1")};
  CheckOptions capped = threaded;
  capped.max_states = 3;  // exploration alone must blow the cap (deprecated alias)
  auto exhausted = check_all(prog.system, tiny, prog.atoms, capped);
  ASSERT_EQ(exhausted.size(), tiny.size());
  for (const auto& r : exhausted) {
    EXPECT_EQ(r.outcome, Outcome::BudgetStates);
    EXPECT_EQ(r.stats.outcome, Outcome::BudgetStates);
    EXPECT_FALSE(r.holds);
    EXPECT_FALSE(r.counterexample.has_value());
  }
}

TEST(Budgets, ZeroStateBudgetReturnsImmediately) {
  Program prog = programs::peterson();
  CheckOptions options;
  options.budget.with_state_cap(0);
  analysis::DiagnosticEngine diags;
  options.diagnostics = &diags;
  auto r = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms, options);
  EXPECT_EQ(r.outcome, Outcome::BudgetStates);
  EXPECT_EQ(r.stats.outcome, Outcome::BudgetStates);
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.counterexample.has_value());
  EXPECT_EQ(r.stats.state_graph_nodes, 0u);
  EXPECT_TRUE(diags.has_code("MPH-V004"));
}

TEST(Budgets, PastDeadlineReportsBudgetDeadline) {
  Program prog = programs::peterson();
  CheckOptions options;
  options.budget.with_deadline(Budget::Clock::now() - std::chrono::seconds(1));
  auto r = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms, options);
  EXPECT_EQ(r.outcome, Outcome::BudgetDeadline);
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(Budgets, CancellationReportsCancelled) {
  Program prog = programs::peterson();
  std::stop_source source;
  source.request_stop();
  CheckOptions options;
  options.budget.with_stop_token(source.get_token());
  auto r = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms, options);
  EXPECT_EQ(r.outcome, Outcome::Cancelled);
  EXPECT_FALSE(r.holds);
}

TEST(Budgets, ExhaustionIsDeterministicAcrossThreadCounts) {
  Program prog = programs::peterson();
  auto free_run = check(prog.system, parse_formula("G !(c1 & c2)"), prog.atoms);
  const std::size_t graph_nodes = free_run.stats.state_graph_nodes;
  ASSERT_GT(graph_nodes, 0u);

  // The cap admits the state graph exactly, so exploration completes but the
  // larger product constructions exhaust — deterministically, because the cap
  // counts interned states, not time.
  std::vector<ltl::Formula> specs = {
      parse_formula("G !(c1 & c2)"),
      parse_formula("G F c1"),       // SCC engine builds the full product
      parse_formula("G(t1 -> F c1)"),
      parse_formula("F(t1 & X(!t1 & X t1))"),  // NBA fallback
  };
  CheckOptions seq;
  seq.budget.with_state_cap(graph_nodes);
  CheckOptions par = seq;
  par.threads = 4;
  analysis::DiagnosticEngine seq_diags, par_diags;
  seq.diagnostics = &seq_diags;
  par.diagnostics = &par_diags;
  auto a = check_all(prog.system, specs, prog.atoms, seq);
  auto b = check_all(prog.system, specs, prog.atoms, par);
  ASSERT_EQ(a.size(), b.size());
  bool any_exhausted = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].outcome, b[i].outcome) << specs[i].to_string();
    EXPECT_EQ(a[i].holds, b[i].holds) << specs[i].to_string();
    EXPECT_EQ(a[i].stats.product_states, b[i].stats.product_states)
        << specs[i].to_string();
    if (!is_complete(a[i].outcome)) {
      any_exhausted = true;
      EXPECT_FALSE(a[i].counterexample.has_value()) << specs[i].to_string();
    }
  }
  EXPECT_TRUE(any_exhausted);
  EXPECT_TRUE(seq_diags.has_code("MPH-V004"));
  ASSERT_EQ(par_diags.size(), seq_diags.size());
  for (std::size_t i = 0; i < seq_diags.size(); ++i)
    EXPECT_EQ(par_diags.diagnostics()[i].code, seq_diags.diagnostics()[i].code);
}

}  // namespace
}  // namespace mph::fts
