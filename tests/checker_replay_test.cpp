// End-to-end validation of model-checker counterexamples: every reported
// (prefix, loop) trace, replayed as the word of its atom labels, must
// actually violate the specification according to the independent lasso
// evaluator — closing the loop between the fts, ltl, and omega layers.
#include <gtest/gtest.h>

#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/patterns.hpp"

namespace mph::fts {
namespace {

using ltl::parse_formula;
using programs::Program;

/// Replays a counterexample into the atom word and checks that the word
/// falsifies the spec. Valid only for atoms that ignore last_taken (all the
/// location atoms of the program library do).
void expect_genuine_counterexample(const Program& prog, const ltl::Formula& spec) {
  auto result = check(prog.system, spec, prog.atoms);
  ASSERT_FALSE(result.holds) << spec.to_string();
  ASSERT_TRUE(result.counterexample.has_value());
  const auto& cex = *result.counterexample;
  ASSERT_FALSE(cex.loop.empty());
  auto atom_names = spec.atoms();
  auto alphabet = lang::Alphabet::of_props(atom_names);
  auto symbol_of = [&](const Valuation& v) {
    lang::Symbol s = 0;
    for (std::size_t i = 0; i < atom_names.size(); ++i)
      if (prog.atoms.at(atom_names[i])(prog.system, v, StateGraph::kNone))
        s |= lang::Symbol{1} << i;
    return s;
  };
  omega::Lasso word;
  for (const auto& v : cex.prefix) word.prefix.push_back(symbol_of(v));
  for (const auto& v : cex.loop) word.loop.push_back(symbol_of(v));
  EXPECT_FALSE(ltl::evaluates(spec, word, alphabet))
      << "counterexample does not violate " << spec.to_string();
}

TEST(CheckerReplay, TrivialMutexAccessibility) {
  expect_genuine_counterexample(programs::trivial_mutex(),
                                ltl::patterns::accessibility("t1", "c1"));
}

TEST(CheckerReplay, SemaphoreWeakStarvation) {
  expect_genuine_counterexample(programs::semaphore_mutex(2, Fairness::Weak),
                                ltl::patterns::accessibility("t1", "c1"));
}

TEST(CheckerReplay, PetersonAbsurdSpecs) {
  Program prog = programs::peterson();
  expect_genuine_counterexample(prog, parse_formula("G !c1"));
  expect_genuine_counterexample(prog, parse_formula("G F c1"));
  expect_genuine_counterexample(prog, parse_formula("F G !t1 & G !c1"));
}

TEST(CheckerReplay, ProducerConsumerDrain) {
  expect_genuine_counterexample(programs::producer_consumer(3),
                                parse_formula("G(nonempty -> F empty)"));
}

TEST(CheckerReplay, DiningPhilosophersDeadlock) {
  expect_genuine_counterexample(programs::dining_philosophers(2),
                                parse_formula("G !deadlock"));
  expect_genuine_counterexample(programs::dining_philosophers(3),
                                parse_formula("G(hungry1 -> F eat1)"));
}

TEST(CheckerReplay, NbaFallbackCounterexamples) {
  expect_genuine_counterexample(programs::dining_philosophers(2),
                                parse_formula("(F eat1) U deadlock"));
  expect_genuine_counterexample(programs::producer_consumer(2),
                                parse_formula("(!full) U full"));
}

}  // namespace
}  // namespace mph::fts
