// Semantic classification on the paper's canonical corpus (§2–§4) plus the
// orthogonality of the Borel and safety–liveness classifications.
#include <gtest/gtest.h>

#include "src/core/classify.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"

namespace mph::core {
namespace {

using lang::compile_regex;
using omega::DetOmega;
using omega::op_a;
using omega::op_e;
using omega::op_p;
using omega::op_r;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }
lang::Alphabet abc() { return lang::Alphabet::plain({"a", "b", "c"}); }

TEST(Classify, SafetyWitness) {
  // a^ω + a⁺b^ω = A(a⁺b*) — the paper's safety example.
  auto c = classify(op_a(compile_regex("a+b*", ab())));
  EXPECT_TRUE(c.safety);
  EXPECT_FALSE(c.guarantee);
  EXPECT_TRUE(c.obligation);   // hierarchy: safety ⊆ obligation
  EXPECT_TRUE(c.recurrence);   // safety ⊆ recurrence
  EXPECT_TRUE(c.persistence);  // safety ⊆ persistence
  EXPECT_FALSE(c.liveness);
  EXPECT_EQ(c.lowest(), PropertyClass::Safety);
}

TEST(Classify, GuaranteeWitness) {
  // ◇b = E(Σ*b) = Σ*·b·Σ^ω: strictly guarantee (a^ω is a limit point of the
  // complement's closure... of the language, so not closed).
  auto c = classify(op_e(compile_regex("(a|b)*b", ab())));
  EXPECT_TRUE(c.guarantee);
  EXPECT_FALSE(c.safety);
  EXPECT_TRUE(c.obligation);
  EXPECT_TRUE(c.liveness);
  EXPECT_EQ(c.lowest(), PropertyClass::Guarantee);
}

TEST(Classify, PaperGuaranteeExampleIsClopen) {
  // The paper's guarantee example E(a⁺b*) = a⁺b*·Σ^ω actually collapses to
  // a·Σ^ω (the one-letter prefix "a" is already in a⁺b*), which is clopen —
  // both safety and guarantee. A reminder that witnesses need care.
  auto c = classify(op_e(compile_regex("a+b*", ab())));
  EXPECT_TRUE(c.guarantee);
  EXPECT_TRUE(c.safety);
}

TEST(Classify, RecurrenceWitness) {
  // (a*b)^ω = R((a*b)⁺): infinitely many b's. Strictly recurrence.
  auto c = classify(op_r(compile_regex("(a*b)+", ab())));
  EXPECT_FALSE(c.safety);
  EXPECT_FALSE(c.guarantee);
  EXPECT_FALSE(c.persistence);
  EXPECT_FALSE(c.obligation);
  EXPECT_TRUE(c.recurrence);
  EXPECT_TRUE(c.liveness);  // every finite word extends with b^ω
  EXPECT_EQ(c.lowest(), PropertyClass::Recurrence);
}

TEST(Classify, PersistenceWitness) {
  // (a+b)*a^ω = P((a|b)*a): eventually only a's. Strictly persistence.
  auto c = classify(op_p(compile_regex("(a|b)*a", ab())));
  EXPECT_FALSE(c.safety);
  EXPECT_FALSE(c.guarantee);
  EXPECT_FALSE(c.recurrence);
  EXPECT_FALSE(c.obligation);
  EXPECT_TRUE(c.persistence);
  EXPECT_TRUE(c.liveness);
  EXPECT_EQ(c.lowest(), PropertyClass::Persistence);
}

TEST(Classify, ObligationWitness) {
  // a*b^ω + Σ*·c·Σ^ω (§2's obligation example): a union of an obligation
  // part (a*b^ω, which is safety ∩ guarantee pieces) and a guarantee.
  auto sigma = abc();
  DetOmega a_star_b = intersection(op_a(compile_regex("a*b*", sigma)),
                                   op_e(compile_regex("a*b", sigma)));
  DetOmega with_c = union_of(a_star_b, op_e(compile_regex("(a|b|c)*c", sigma)));
  auto c = classify(with_c);
  EXPECT_FALSE(c.safety);
  EXPECT_FALSE(c.guarantee);
  EXPECT_TRUE(c.obligation);
  EXPECT_TRUE(c.recurrence);
  EXPECT_TRUE(c.persistence);
  EXPECT_EQ(c.lowest(), PropertyClass::Obligation);
}

TEST(Classify, SimpleReactivityWitness) {
  // R(Σ*a) ∪ P(Σ*b) over {a,b,c}: infinitely many a's or eventually only
  // b's. Strictly reactivity.
  auto sigma = abc();
  DetOmega m = union_of(op_r(compile_regex("(a|b|c)*a", sigma)),
                        op_p(compile_regex("(a|b|c)*b", sigma)));
  auto c = classify(m);
  EXPECT_FALSE(c.recurrence);
  EXPECT_FALSE(c.persistence);
  EXPECT_FALSE(c.obligation);
  EXPECT_EQ(c.lowest(), PropertyClass::Reactivity);
}

TEST(Classify, TrivialProperties) {
  auto sigma = ab();
  // Σ^ω: everything; in every class.
  auto all = classify(op_a(compile_regex("(a|b)+", sigma)));
  EXPECT_TRUE(all.safety);
  EXPECT_TRUE(all.guarantee);
  EXPECT_TRUE(all.liveness);
  // ∅: also in every class, not liveness.
  auto none = classify(op_a(lang::empty_dfa(sigma)));
  EXPECT_TRUE(none.safety);
  EXPECT_TRUE(none.guarantee);
  EXPECT_FALSE(none.liveness);
}

TEST(Classify, OperatorsLandInTheirClasses) {
  // Everything built by A/E/R/P lands in (at least) the matching class.
  Rng rng(61);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    EXPECT_TRUE(classify(op_a(phi)).safety);
    EXPECT_TRUE(classify(op_e(phi)).guarantee);
    EXPECT_TRUE(classify(op_r(phi)).recurrence);
    EXPECT_TRUE(classify(op_p(phi)).persistence);
  }
}

TEST(Classify, HierarchyInclusionsNeverViolated) {
  // Figure 1: safety/guarantee ⊆ obligation ⊆ recurrence/persistence.
  Rng rng(67);
  auto sigma = ab();
  for (int trial = 0; trial < 12; ++trial) {
    lang::Dfa p1 = lang::random_dfa(rng, sigma, 3);
    lang::Dfa p2 = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m :
         {op_a(p1), op_e(p1), op_r(p1), op_p(p1), union_of(op_a(p1), op_e(p2)),
          intersection(op_r(p1), op_p(p2))}) {
      auto c = classify(m);
      if (c.safety || c.guarantee) {
        EXPECT_TRUE(c.obligation) << c.describe();
      }
      if (c.obligation) {
        EXPECT_TRUE(c.recurrence) << c.describe();
        EXPECT_TRUE(c.persistence) << c.describe();
      }
      EXPECT_EQ(c.obligation, c.recurrence && c.persistence);
      EXPECT_TRUE(c.is(PropertyClass::Reactivity));
    }
  }
}

TEST(Classify, DualityBetweenClasses) {
  // Π safety iff Π̄ guarantee; Π recurrence iff Π̄ persistence (§2).
  Rng rng(71);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m : {op_a(phi), op_e(phi), op_r(phi), op_p(phi)}) {
      auto c = classify(m);
      auto cc = classify(omega::complement(m));
      EXPECT_EQ(c.safety, cc.guarantee);
      EXPECT_EQ(c.guarantee, cc.safety);
      EXPECT_EQ(c.recurrence, cc.persistence);
      EXPECT_EQ(c.persistence, cc.recurrence);
      EXPECT_EQ(c.obligation, cc.obligation);
    }
  }
}

TEST(Classify, BooleanClosureOfClasses) {
  // §2 closure: each basic class closed under ∪ and ∩.
  Rng rng(73);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    lang::Dfa p1 = lang::random_dfa(rng, sigma, 3);
    lang::Dfa p2 = lang::random_dfa(rng, sigma, 3);
    EXPECT_TRUE(classify(union_of(op_a(p1), op_a(p2))).safety);
    EXPECT_TRUE(classify(intersection(op_a(p1), op_a(p2))).safety);
    EXPECT_TRUE(classify(union_of(op_e(p1), op_e(p2))).guarantee);
    EXPECT_TRUE(classify(intersection(op_e(p1), op_e(p2))).guarantee);
    EXPECT_TRUE(classify(union_of(op_r(p1), op_r(p2))).recurrence);
    EXPECT_TRUE(classify(intersection(op_r(p1), op_r(p2))).recurrence);
    EXPECT_TRUE(classify(union_of(op_p(p1), op_p(p2))).persistence);
    EXPECT_TRUE(classify(intersection(op_p(p1), op_p(p2))).persistence);
    // Mixed: safety ∪ guarantee is an obligation.
    EXPECT_TRUE(classify(union_of(op_a(p1), op_e(p2))).obligation);
  }
}

TEST(Classify, LivenessOrthogonality) {
  // The recurrence witness is live; intersecting with its safety closure
  // does not change it; classification is about the Borel axis only.
  auto sigma = ab();
  DetOmega rec = op_r(compile_regex("(a*b)+", sigma));
  auto c = classify(rec);
  EXPECT_TRUE(c.liveness);
  EXPECT_TRUE(c.recurrence);
  // A non-live recurrence property: (a*b)^ω ∩ A(a⁺...) — e.g. must start
  // with a and have infinitely many b's.
  DetOmega guarded = intersection(rec, op_a(compile_regex("a(a|b)*", sigma)));
  auto c2 = classify(guarded);
  EXPECT_FALSE(c2.liveness);
  EXPECT_TRUE(c2.recurrence);
  EXPECT_FALSE(c2.safety);
}

TEST(Classify, DescribeMentionsClassesAndLiveness) {
  auto sigma = ab();
  auto c = classify(op_r(compile_regex("(a*b)+", sigma)));
  std::string d = c.describe();
  EXPECT_NE(d.find("recurrence"), std::string::npos);
  EXPECT_NE(d.find("liveness"), std::string::npos);
  EXPECT_EQ(d.find("safety"), std::string::npos);
}

}  // namespace
}  // namespace mph::core
