// Büchi complementation + language inclusion (docs/COMPLEMENT.md):
// differential agreement against lasso enumeration, NCSB vs rank-based
// agreement on semi-deterministic inputs, inclusion reflexivity and
// antisymmetry-up-to-language, and budget-refusal determinism.
#include <gtest/gtest.h>

#include "src/fuzz/generators.hpp"
#include "src/omega/complement.hpp"
#include "src/omega/inclusion.hpp"
#include "src/omega/lasso.hpp"
#include "src/support/rng.hpp"

namespace mph::omega {
namespace {

lang::Alphabet letters(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.emplace_back(1, static_cast<char>('a' + i));
  return lang::Alphabet::plain(names);
}

/// □◇-style two-state semi-deterministic automaton over {a, b}: accepts
/// words with infinitely many `a`.
Nba inf_a() {
  Nba n(letters(2));
  n.add_state();
  n.add_state();
  n.set_accepting(1, true);
  for (Symbol s = 0; s < 2; ++s) {
    n.add_edge(0, s, s == 0 ? 1 : 0);
    n.add_edge(1, s, s == 0 ? 1 : 0);
  }
  n.add_initial(0);
  return n;
}

TEST(Complement, UniversalOfEmpty) {
  Nba n(letters(2));
  n.add_state();  // no accepting cycle, no language
  n.add_edge(0, 0, 0);
  n.add_initial(0);
  auto comp = complement(n);
  ASSERT_TRUE(comp.complete());
  for (const Lasso& l : enumerate_lassos(n.alphabet(), 2, 2))
    EXPECT_TRUE(comp.value->accepts(l));
}

TEST(Complement, EmptyOfUniversal) {
  Nba n(letters(2));
  n.add_state();
  n.set_accepting(0, true);
  for (Symbol s = 0; s < 2; ++s) n.add_edge(0, s, 0);
  n.add_initial(0);
  auto comp = complement(n);
  ASSERT_TRUE(comp.complete());
  EXPECT_TRUE(is_empty(*comp.value));
}

TEST(Complement, InfAIsSemiDeterministicAndComplements) {
  Nba n = inf_a();
  EXPECT_TRUE(is_semi_deterministic(n));
  auto comp = complement(n);
  ASSERT_TRUE(comp.complete());
  EXPECT_GE(comp.stats.ncsb_parts, 1u);
  for (const Lasso& l : enumerate_lassos(n.alphabet(), 2, 3))
    EXPECT_EQ(comp.value->accepts(l), !n.accepts(l)) << "lasso disagreement";
}

TEST(Complement, DifferentialAgainstLassoEnumeration) {
  Rng rng(0xc0117e57);
  for (int iter = 0; iter < 60; ++iter) {
    lang::Alphabet sigma = letters(2 + rng.below(2));
    Nba n = fuzz::random_nba(rng, sigma, 1 + rng.below(4));
    ComplementOptions opts;
    opts.budget = Budget().with_state_cap(20000);
    auto comp = complement(n, opts);
    if (!comp.complete()) continue;  // budget refusal is allowed, silence is not
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2))
      ASSERT_EQ(comp.value->accepts(l), !n.accepts(l))
          << "iteration " << iter << " disagrees on a lasso";
  }
}

TEST(Complement, NcsbAndRankAgreeOnSemiDeterministicInputs) {
  Rng rng(0x5e111de7);
  int checked = 0;
  for (int iter = 0; iter < 120 && checked < 30; ++iter) {
    lang::Alphabet sigma = letters(2);
    Nba n = fuzz::random_nba(rng, sigma, 1 + rng.below(4));
    if (!is_semi_deterministic(n)) continue;
    ComplementOptions ncsb, rank;
    ncsb.budget = rank.budget = Budget().with_state_cap(20000);
    ncsb.algorithm = ComplementAlgorithm::Ncsb;
    rank.algorithm = ComplementAlgorithm::Rank;
    auto c1 = complement(n, ncsb);
    auto c2 = complement(n, rank);
    if (!c1.complete() || !c2.complete()) continue;
    ++checked;
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      const bool expect = !n.accepts(l);
      ASSERT_EQ(c1.value->accepts(l), expect) << "NCSB wrong at iteration " << iter;
      ASSERT_EQ(c2.value->accepts(l), expect) << "rank wrong at iteration " << iter;
    }
  }
  EXPECT_GE(checked, 10);
}

TEST(Inclusion, Reflexivity) {
  Rng rng(0xf1e1d);
  for (int iter = 0; iter < 40; ++iter) {
    lang::Alphabet sigma = letters(2);
    Nba n = fuzz::random_nba(rng, sigma, 1 + rng.below(4));
    InclusionOptions opts;
    opts.budget = Budget().with_state_cap(50000);
    auto r = included(n, n, opts);
    if (r.verdict == InclusionVerdict::Unknown) continue;
    EXPECT_EQ(r.verdict, InclusionVerdict::Included) << "iteration " << iter;
  }
}

TEST(Inclusion, VerdictsMatchLassoEnumerationAndCexIsValid) {
  Rng rng(0x1c1d);
  for (int iter = 0; iter < 60; ++iter) {
    lang::Alphabet sigma = letters(2);
    Nba a = fuzz::random_nba(rng, sigma, 1 + rng.below(3));
    Nba b = fuzz::random_nba(rng, sigma, 1 + rng.below(3));
    InclusionOptions opts;
    opts.budget = Budget().with_state_cap(50000);
    auto r = included(a, b, opts);
    if (r.verdict == InclusionVerdict::Unknown) continue;
    if (r.verdict == InclusionVerdict::NotIncluded) {
      ASSERT_TRUE(r.counterexample.has_value());
      EXPECT_TRUE(a.accepts(*r.counterexample)) << "cex not in L(A), iteration " << iter;
      EXPECT_FALSE(b.accepts(*r.counterexample)) << "cex in L(B), iteration " << iter;
    } else {
      for (const Lasso& l : enumerate_lassos(sigma, 2, 2))
        ASSERT_FALSE(a.accepts(l) && !b.accepts(l))
            << "Included but witness exists, iteration " << iter;
    }
  }
}

TEST(Inclusion, AntisymmetryUpToLanguage) {
  Rng rng(0xa57);
  int mutual = 0;
  for (int iter = 0; iter < 80; ++iter) {
    lang::Alphabet sigma = letters(2);
    Nba a = fuzz::random_nba(rng, sigma, 1 + rng.below(3));
    Nba b = fuzz::random_nba(rng, sigma, 1 + rng.below(3));
    InclusionOptions opts;
    opts.budget = Budget().with_state_cap(50000);
    if (included(a, b, opts).verdict != InclusionVerdict::Included) continue;
    if (included(b, a, opts).verdict != InclusionVerdict::Included) continue;
    ++mutual;
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2))
      ASSERT_EQ(a.accepts(l), b.accepts(l)) << "mutual inclusion but languages differ";
  }
  EXPECT_GE(mutual, 1);
}

TEST(Inclusion, BudgetRefusalIsDeterministic) {
  Rng rng(0xb4d9e7);
  lang::Alphabet sigma = letters(2);
  Nba a = fuzz::random_nba(rng, sigma, 4);
  Nba b = fuzz::random_nba(rng, sigma, 4);
  InclusionOptions tight;
  tight.budget = Budget().with_state_cap(3);
  auto r1 = included(a, b, tight);
  auto r2 = included(a, b, tight);
  EXPECT_EQ(r1.verdict, r2.verdict);
  EXPECT_EQ(r1.outcome, r2.outcome);
  EXPECT_EQ(r1.product_states, r2.product_states);
  if (r1.verdict == InclusionVerdict::Unknown) {
    EXPECT_EQ(r1.outcome, Outcome::BudgetStates);
    EXPECT_FALSE(r1.counterexample.has_value());
  }
}

TEST(Inclusion, StrictSubsetDirections) {
  // L(inf-a) ⊆ Σ^ω strictly.
  Nba universal(letters(2));
  universal.add_state();
  universal.set_accepting(0, true);
  for (Symbol s = 0; s < 2; ++s) universal.add_edge(0, s, 0);
  universal.add_initial(0);
  Nba inf = inf_a();
  EXPECT_EQ(included(inf, universal).verdict, InclusionVerdict::Included);
  auto back = included(universal, inf);
  EXPECT_EQ(back.verdict, InclusionVerdict::NotIncluded);
  ASSERT_TRUE(back.counterexample.has_value());
  EXPECT_TRUE(universal.accepts(*back.counterexample));
  EXPECT_FALSE(inf.accepts(*back.counterexample));
}

}  // namespace
}  // namespace mph::omega
