// Edge cases and helper coverage across modules: atom builders, DNF caps,
// evaluator guard rails, tracker limits, and error paths that the main
// suites don't reach.
#include <gtest/gtest.h>

#include "src/fts/fts.hpp"
#include "src/fts/programs.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/regex.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/to_nba.hpp"
#include "src/omega/acceptance.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"

namespace mph {
namespace {

TEST(AcceptanceDnf, StreettNegationHasKClauses) {
  for (std::size_t k = 1; k <= 4; ++k) {
    auto clauses = omega::Acceptance::streett(k).negate().dnf();
    EXPECT_EQ(clauses.size(), k);
    for (const auto& c : clauses) {
      // Each clause: avoid R_i, require (Q − P_i)'s mark.
      EXPECT_EQ(std::popcount(c.avoid), 1);
      EXPECT_EQ(std::popcount(c.require), 1);
    }
  }
}

TEST(AcceptanceDnf, UnsatisfiableClausesDropped) {
  // Inf(0) ∧ Fin(0) is unsatisfiable → empty DNF.
  auto acc = omega::Acceptance::conj(omega::Acceptance::inf(0), omega::Acceptance::fin(0));
  EXPECT_TRUE(acc.dnf().empty());
}

TEST(AcceptanceDnf, CapThrows) {
  // A conjunction of k two-clause disjunctions expands to 2^k clauses.
  omega::Acceptance acc = omega::Acceptance::t();
  for (omega::Mark m = 0; m < 10; ++m)
    acc = omega::Acceptance::conj(
        std::move(acc),
        omega::Acceptance::disj(omega::Acceptance::inf(2 * m),
                                omega::Acceptance::inf(2 * m + 1)));
  EXPECT_THROW(acc.dnf(/*max_clauses=*/16), std::invalid_argument);
  EXPECT_EQ(acc.dnf(/*max_clauses=*/2048).size(), 1024u);
}

TEST(FtsAtoms, BuildersEvaluateOnValuations) {
  fts::Fts s;
  std::size_t x = s.add_var("x", 0, 5, 2);
  std::size_t t = s.add_transition(
      "inc", fts::Fairness::None, [x](const fts::Valuation& v) { return v[x] < 5; },
      [x](fts::Valuation& v) { ++v[x]; });
  fts::Valuation v{3};
  EXPECT_TRUE(fts::var_equals(s, "x", 3)(s, v, -1));
  EXPECT_FALSE(fts::var_equals(s, "x", 2)(s, v, -1));
  EXPECT_TRUE(fts::var_at_least(s, "x", 3)(s, v, -1));
  EXPECT_FALSE(fts::var_at_least(s, "x", 4)(s, v, -1));
  EXPECT_TRUE(fts::taken(t)(s, v, static_cast<int>(t)));
  EXPECT_FALSE(fts::taken(t)(s, v, -1));
  EXPECT_TRUE(fts::enabled_atom(t)(s, v, -1));
  fts::Valuation top{5};
  EXPECT_FALSE(fts::enabled_atom(t)(s, top, -1));
  EXPECT_TRUE(fts::deadlocked()(s, top, -1));
  EXPECT_FALSE(fts::deadlocked()(s, v, -1));
}

TEST(FtsAtoms, UnknownVariableThrows) {
  fts::Fts s;
  s.add_var("x", 0, 1, 0);
  EXPECT_THROW(fts::var_equals(s, "y", 0), std::invalid_argument);
  EXPECT_THROW(s.var_index("zz"), std::invalid_argument);
}

TEST(FtsApply, GuardViolationsThrow) {
  fts::Fts s;
  std::size_t x = s.add_var("x", 0, 1, 0);
  std::size_t t = s.add_transition(
      "flip", fts::Fairness::None, [x](const fts::Valuation& v) { return v[x] == 0; },
      [x](fts::Valuation& v) { v[x] = 1; });
  EXPECT_THROW(s.apply(t, fts::Valuation{1}), std::invalid_argument);
  EXPECT_EQ(s.apply(t, fts::Valuation{0}), (fts::Valuation{1}));
}

TEST(EvalGuards, UnknownAtomsThrow) {
  auto sigma = lang::Alphabet::of_props({"p"});
  omega::Lasso l{{}, {0}};
  EXPECT_THROW(ltl::evaluates(ltl::parse_formula("nope"), l, sigma), std::invalid_argument);
  EXPECT_THROW(ltl::evaluates(ltl::parse_formula("G zz"), l, sigma), std::invalid_argument);
}

TEST(EvalGuards, EmptyLoopRejected) {
  auto sigma = lang::Alphabet::of_props({"p"});
  omega::Lasso bad{{0}, {}};
  EXPECT_THROW(ltl::evaluates(ltl::parse_formula("p"), bad, sigma), std::invalid_argument);
}

TEST(CompileGuards, PastOverFutureRejected) {
  auto sigma = lang::Alphabet::of_props({"p", "q"});
  EXPECT_THROW(ltl::compile(ltl::parse_formula("O F p"), sigma), std::invalid_argument);
}

TEST(ToNbaGuards, ClosureCapThrows) {
  auto sigma = lang::Alphabet::of_props({"p", "q"});
  // 13 temporal subformulas exceed the 12-free-variable cap.
  std::string big = "p";
  for (int i = 0; i < 13; ++i) big = "X(" + big + ")";
  EXPECT_THROW(ltl::to_nba(ltl::parse_formula(big), sigma), std::invalid_argument);
}

TEST(ToNbaGuards, PastRejected) {
  auto sigma = lang::Alphabet::of_props({"p"});
  EXPECT_THROW(ltl::to_nba(ltl::parse_formula("O p"), sigma), std::invalid_argument);
}

TEST(AlphabetOf, RequiresAtoms) {
  EXPECT_THROW(ltl::alphabet_of(ltl::parse_formula("true")), std::invalid_argument);
  auto a = ltl::alphabet_of(ltl::parse_formula("G(p -> F q)"));
  EXPECT_EQ(a.prop_count(), 2u);
}

TEST(ProductGuards, MarkBudgetEnforced) {
  // Two automata with ~33 marks each cannot be multiplied under 64 marks.
  auto sigma = lang::Alphabet::plain({"a", "b"});
  omega::DetOmega big1(sigma, 1, 0, omega::Acceptance::streett(17));  // marks 0..33
  omega::DetOmega big2(sigma, 1, 0, omega::Acceptance::streett(17));
  EXPECT_THROW(intersection(big1, big2), std::invalid_argument);
}

TEST(UnionIntersectionChains, ManyOperandsStayCorrect) {
  // Chain four operator-built automata; spot-check semantics on lassos.
  auto sigma = lang::Alphabet::plain({"a", "b"});
  auto r = [&](const std::string& re) { return lang::compile_regex(re, sigma); };
  auto m = intersection(intersection(omega::op_r(r("(a|b)*a")), omega::op_r(r("(a|b)*b"))),
                        omega::op_a(r("(a|b)+")));
  // "Infinitely many a and infinitely many b".
  EXPECT_TRUE(m.accepts_text("(ab)"));
  EXPECT_FALSE(m.accepts_text("(a)"));
  EXPECT_FALSE(m.accepts_text("ab(b)"));
  auto u = union_of(m, omega::op_p(r("(a|b)*a")));
  EXPECT_TRUE(u.accepts_text("(a)"));  // via the persistence disjunct
  EXPECT_TRUE(u.accepts_text("(ab)"));
  EXPECT_FALSE(u.accepts_text("a(b)"));
}

TEST(ExploreGuards, MaxStatesEnforced) {
  auto prog = fts::programs::dining_philosophers(3);
  fts::ExploreResult ex = fts::explore(prog.system, Budget().with_state_cap(3));
  EXPECT_EQ(ex.outcome, Outcome::BudgetStates);
  EXPECT_EQ(ex.graph.nodes.size(), 3u);
}

TEST(StreettPairsGuards, Validation) {
  auto sigma = lang::Alphabet::plain({"a", "b"});
  omega::DetOmega m(sigma, 2, 0, omega::Acceptance::t());
  EXPECT_THROW(omega::apply_streett_pairs(m, {}), std::invalid_argument);
  EXPECT_THROW(omega::apply_streett_pairs(m, {omega::StreettPair{{5}, {}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mph
