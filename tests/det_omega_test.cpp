#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/counter_free.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/graph.hpp"
#include "src/omega/operators.hpp"
#include "tests/omega_test_util.hpp"

namespace mph::omega {
namespace {

using lang::compile_regex;
using testutil::expect_same_language;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(DetOmega, AcceptsFollowsRunDeterministically) {
  // Büchi automaton for "infinitely many a".
  auto sigma = ab();
  DetOmega m(sigma, 2, 0, Acceptance::buchi(0));
  m.set_transition(0, 0, 1);
  m.set_transition(0, 1, 0);
  m.set_transition(1, 0, 1);
  m.set_transition(1, 1, 0);
  m.add_mark(1, 0);
  EXPECT_TRUE(m.accepts_text("(a)"));
  EXPECT_TRUE(m.accepts_text("(ab)"));
  EXPECT_TRUE(m.accepts_text("bbbb(ba)"));
  EXPECT_FALSE(m.accepts_text("(b)"));
  EXPECT_FALSE(m.accepts_text("aaaa(b)"));
}

TEST(DetOmega, LoopSplitInvariance) {
  // Acceptance must not depend on how the same word is split into a lasso.
  auto sigma = ab();
  DetOmega m = op_r(compile_regex("(a|b)*b", sigma));
  EXPECT_EQ(m.accepts_text("(ab)"), m.accepts_text("ab(ab)"));
  EXPECT_EQ(m.accepts_text("(ab)"), m.accepts_text("a(ba)"));
  EXPECT_EQ(m.accepts_text("(ab)"), m.accepts_text("(abab)"));
  EXPECT_EQ(m.accepts_text("(b)"), m.accepts_text("bbb(bb)"));
}

TEST(DetOmega, ComplementIsPointwiseNegation) {
  Rng rng(41);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    DetOmega m = op_r(phi);
    DetOmega c = complement(m);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2))
      ASSERT_NE(m.accepts(l), c.accepts(l)) << l.to_string(sigma);
  }
}

TEST(DetOmega, ProductIntersectionAndUnionPointwise) {
  Rng rng(43);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    DetOmega m1 = op_r(lang::random_dfa(rng, sigma, 3));
    DetOmega m2 = op_p(lang::random_dfa(rng, sigma, 3));
    DetOmega inter = intersection(m1, m2);
    DetOmega uni = union_of(m1, m2);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      ASSERT_EQ(inter.accepts(l), m1.accepts(l) && m2.accepts(l)) << l.to_string(sigma);
      ASSERT_EQ(uni.accepts(l), m1.accepts(l) || m2.accepts(l)) << l.to_string(sigma);
    }
  }
}

TEST(DetOmega, EmptinessBasics) {
  auto sigma = ab();
  EXPECT_TRUE(is_empty(op_e(lang::empty_dfa(sigma))));
  EXPECT_FALSE(is_empty(op_r(compile_regex("(a|b)*b", sigma))));
  // A(Φ) with no valid first symbol: Φ = b·Σ* means words must start with b
  // and all prefixes in Φ... A(b(a|b)*) = b·Σ^ω which is non-empty.
  EXPECT_FALSE(is_empty(op_a(compile_regex("b(a|b)*", sigma))));
  // A(@) is empty.
  EXPECT_TRUE(is_empty(op_a(lang::empty_dfa(sigma))));
}

TEST(DetOmega, AcceptingLassoWitnessIsAccepted) {
  Rng rng(47);
  auto sigma = ab();
  int nonempty_seen = 0;
  for (int trial = 0; trial < 30; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 4);
    for (const DetOmega& m : {op_a(phi), op_e(phi), op_r(phi), op_p(phi)}) {
      auto l = accepting_lasso(m);
      EXPECT_EQ(l.has_value(), !is_empty(m));
      if (l) {
        EXPECT_TRUE(m.accepts(*l));
        ++nonempty_seen;
      }
    }
  }
  EXPECT_GT(nonempty_seen, 20);
}

TEST(DetOmega, StreettEmptinessWithMultiplePairs) {
  auto sigma = lang::Alphabet::plain({"a", "b", "c"});
  // Three states cycling a→b→c; Streett pairs demand visiting state 1 i.o.
  // and state 2 i.o.
  DetOmega m(sigma, 3, 0, Acceptance::streett(2));
  for (State q = 0; q < 3; ++q)
    for (Symbol s = 0; s < 3; ++s) m.set_transition(q, s, s);
  m.add_mark(1, 0);
  m.add_mark(2, 2);
  // With no Fin escape (P sets empty => marks 1,3 on all states):
  for (State q = 0; q < 3; ++q) {
    m.add_mark(q, 1);
    m.add_mark(q, 3);
  }
  EXPECT_FALSE(is_empty(m));
  auto l = accepting_lasso(m);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(m.accepts(*l));
  // The witness loop must contain both b and c.
  bool has_b = false, has_c = false;
  for (auto s : l->loop) {
    has_b |= (s == 1);
    has_c |= (s == 2);
  }
  EXPECT_TRUE(has_b && has_c);
}

TEST(DetOmega, RabinEmptiness) {
  auto sigma = ab();
  // Rabin: Fin(0) ∧ Inf(1). State 0 marked 0, state 1 marked 1.
  DetOmega m(sigma, 2, 0, Acceptance::rabin(1));
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 1);
  m.add_mark(0, 0);
  m.add_mark(1, 1);
  // Accept iff eventually avoid state 0 and hit state 1 i.o. → b^ω tail.
  EXPECT_TRUE(m.accepts_text("(b)"));
  EXPECT_TRUE(m.accepts_text("abab(b)"));
  EXPECT_FALSE(m.accepts_text("(ab)"));
  EXPECT_FALSE(m.accepts_text("(a)"));
  EXPECT_FALSE(is_empty(m));
  auto l = accepting_lasso(m);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(m.accepts(*l));
}

TEST(DetOmega, ContainmentAndEquivalence) {
  auto sigma = ab();
  DetOmega inf_b = op_r(compile_regex("(a|b)*b", sigma));
  DetOmega ev_b = op_e(compile_regex("(a|b)*b", sigma));
  EXPECT_TRUE(contains(ev_b, inf_b));   // ∞ b's ⊆ some b
  EXPECT_FALSE(contains(inf_b, ev_b));  // not conversely
  EXPECT_TRUE(equivalent(inf_b, inf_b));
  auto w = difference_witness(inf_b, ev_b);
  ASSERT_TRUE(w.has_value());
  EXPECT_NE(inf_b.accepts(*w), ev_b.accepts(*w));
}

TEST(DetOmega, LiveStatesResiduals) {
  auto sigma = ab();
  // op_a(a+b*): sink state is dead, others live.
  DetOmega m = op_a(compile_regex("a+b*", sigma));
  auto live = live_states(m);
  int dead = 0;
  for (State q = 0; q < m.state_count(); ++q) dead += !live[q];
  EXPECT_GE(dead, 1);
  EXPECT_TRUE(live[m.initial()]);
}

TEST(Graph, GoodLoopStatesOnButterfly) {
  // Two loops sharing no state: one accepting (mark 0), one not.
  auto sigma = ab();
  DetOmega m(sigma, 3, 0, Acceptance::buchi(0));
  // 0 -a-> 1 -a-> 1 (marked); 0 -b-> 2 -b-> 2 (unmarked).
  m.set_transition(0, 0, 1);
  m.set_transition(0, 1, 2);
  m.set_transition(1, 0, 1);
  m.set_transition(1, 1, 1);
  m.set_transition(2, 0, 2);
  m.set_transition(2, 1, 2);
  m.add_mark(1, 0);
  auto good = good_loop_states(to_graph(m), m.acceptance());
  EXPECT_TRUE(good[1]);
  EXPECT_FALSE(good[0]);
  EXPECT_FALSE(good[2]);
}

TEST(Graph, NontrivialSccsRespectAllowedMask) {
  auto sigma = ab();
  DetOmega m(sigma, 3, 0, Acceptance::t());
  // Cycle 0→1→2→0 on 'a'; self-loops on 'b'.
  m.set_transition(0, 0, 1);
  m.set_transition(1, 0, 2);
  m.set_transition(2, 0, 0);
  auto g = to_graph(m);
  std::vector<bool> all(3, true);
  auto sccs = nontrivial_sccs(g, all);
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), 3u);
  // Remove state 1: states 0 and 2 keep only their b self-loops.
  std::vector<bool> mask{true, false, true};
  auto sccs2 = nontrivial_sccs(g, mask);
  EXPECT_EQ(sccs2.size(), 2u);
  for (const auto& s : sccs2) EXPECT_EQ(s.size(), 1u);
}

TEST(CounterFree, Examples) {
  auto sigma = ab();
  // a*b-style languages are counter-free.
  EXPECT_TRUE(is_counter_free(compile_regex("a*b", sigma)));
  EXPECT_TRUE(is_counter_free(compile_regex("(a|b)*b", sigma)));
  EXPECT_TRUE(is_counter_free(op_r(compile_regex("(a|b)*b", sigma))));
  // "Even number of a's" is the canonical counter.
  lang::Dfa even(sigma, 2, 0);
  even.set_transition(0, 0, 1);
  even.set_transition(1, 0, 0);
  even.set_accepting(0);
  EXPECT_FALSE(is_counter_free(even));
  EXPECT_FALSE(is_counter_free(op_r(even)));
}

TEST(CounterFree, CapThrows) {
  // A counter-free automaton whose monoid has more than two elements: the
  // exploration must hit the cap instead of finishing or rejecting.
  auto sigma = ab();
  lang::Dfa d = compile_regex("a*b", sigma);
  EXPECT_THROW(is_counter_free(d, /*max_monoid=*/2), std::invalid_argument);
}

}  // namespace
}  // namespace mph::omega
