#include <gtest/gtest.h>

#include "src/lang/dfa.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/nfa.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"

namespace mph::lang {
namespace {

Alphabet ab() { return Alphabet::plain({"a", "b"}); }

// DFA for "even number of a's".
Dfa even_a() {
  Dfa d(ab(), 2, 0);
  d.set_transition(0, 0, 1);
  d.set_transition(1, 0, 0);
  d.set_transition(0, 1, 0);
  d.set_transition(1, 1, 1);
  d.set_accepting(0);
  return d;
}

TEST(Dfa, RunAndAccept) {
  Dfa d = even_a();
  EXPECT_TRUE(d.accepts_text(""));
  EXPECT_FALSE(d.accepts_text("a"));
  EXPECT_TRUE(d.accepts_text("aa"));
  EXPECT_TRUE(d.accepts_text("aba"));
  EXPECT_TRUE(d.accepts_text("aab"));
  EXPECT_FALSE(d.accepts_text("aaab"));
}

TEST(Dfa, AcceptingCount) {
  Dfa d = even_a();
  EXPECT_EQ(d.accepting_count(), 1u);
  d.set_accepting(1);
  EXPECT_EQ(d.accepting_count(), 2u);
  d.set_accepting(0, false);
  EXPECT_EQ(d.accepting_count(), 1u);
}

TEST(Dfa, CompleteByConstruction) {
  Dfa d(ab(), 3, 1);
  EXPECT_EQ(d.initial(), State{1});
  for (State q = 0; q < 3; ++q)
    for (Symbol s = 0; s < 2; ++s) EXPECT_EQ(d.next(q, s), q);  // default self-loops
}

TEST(Dfa, OutOfRangeThrows) {
  Dfa d(ab(), 2, 0);
  EXPECT_THROW(d.set_transition(2, 0, 0), std::invalid_argument);
  EXPECT_THROW(d.set_transition(0, 5, 0), std::invalid_argument);
  EXPECT_THROW(d.next(0, 9), std::invalid_argument);
  EXPECT_THROW((Dfa{ab(), 2, 7}), std::invalid_argument);
}

TEST(DfaOps, Complement) {
  Dfa d = complement(even_a());
  EXPECT_FALSE(d.accepts_text(""));
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_FALSE(d.accepts_text("aa"));
}

TEST(DfaOps, ProductIntersectionUnionDifference) {
  auto sigma = ab();
  Dfa even = even_a();
  Dfa ends_b = compile_regex(".*b", sigma);
  Dfa both = intersection(even, ends_b);
  EXPECT_TRUE(both.accepts_text("aab"));
  EXPECT_FALSE(both.accepts_text("ab"));
  EXPECT_FALSE(both.accepts_text("aa"));
  Dfa either = union_of(even, ends_b);
  EXPECT_TRUE(either.accepts_text("ab"));
  EXPECT_TRUE(either.accepts_text("aa"));
  EXPECT_FALSE(either.accepts_text("a"));
  Dfa diff = difference(even, ends_b);
  EXPECT_TRUE(diff.accepts_text("aa"));
  EXPECT_FALSE(diff.accepts_text("aab"));
}

TEST(DfaOps, ProductAlphabetMismatchThrows) {
  Dfa d1 = even_a();
  Dfa d2(Alphabet::plain({"x", "y"}), 1, 0);
  EXPECT_THROW(intersection(d1, d2), std::invalid_argument);
}

TEST(DfaOps, EmptinessAndUniversality) {
  auto sigma = ab();
  EXPECT_TRUE(is_empty(empty_dfa(sigma)));
  EXPECT_FALSE(is_empty(even_a()));
  EXPECT_TRUE(is_universal(universal_dfa(sigma)));
  EXPECT_FALSE(is_universal(even_a()));
}

TEST(DfaOps, EmptyNonEpsilon) {
  auto sigma = ab();
  Dfa only_eps = compile_regex("%", sigma);
  EXPECT_FALSE(is_empty(only_eps));
  EXPECT_TRUE(is_empty_nonepsilon(only_eps));
}

TEST(DfaOps, EquivalenceAndSubset) {
  auto sigma = ab();
  Dfa r1 = compile_regex("(a|b)*a(a|b)*", sigma);  // contains an a
  Dfa r2 = complement(compile_regex("b*", sigma));
  EXPECT_TRUE(equivalent(r1, r2));
  EXPECT_TRUE(subset(compile_regex("a+", sigma), r1));
  EXPECT_FALSE(subset(r1, compile_regex("a+", sigma)));
}

TEST(DfaOps, MinimizeIsCanonicalAndEquivalent) {
  Rng rng(11);
  auto sigma = ab();
  for (int trial = 0; trial < 25; ++trial) {
    Dfa d = random_dfa(rng, sigma, 8);
    Dfa m = minimize(d);
    EXPECT_TRUE(equivalent(d, m));
    EXPECT_LE(m.state_count(), d.state_count() + 1);  // +1 for possible dead state
    // Minimizing twice yields the same number of states.
    EXPECT_EQ(minimize(m).state_count(), m.state_count());
  }
}

TEST(DfaOps, MinimizeCollapsesRedundantStates) {
  auto sigma = ab();
  // Two equivalent copies of "ends in b" glued together.
  Dfa d(sigma, 4, 0);
  for (State q : {State{0}, State{2}}) {
    d.set_transition(q, 0, q);
    d.set_transition(q, 1, q + 1);
  }
  for (State q : {State{1}, State{3}}) {
    d.set_transition(q, 0, static_cast<State>(q == 1 ? 2 : 0));
    d.set_transition(q, 1, q);
    d.set_accepting(q);
  }
  Dfa m = minimize(d);
  EXPECT_EQ(m.state_count(), 2u);
  EXPECT_TRUE(m.accepts_text("ab"));
  EXPECT_FALSE(m.accepts_text("ba"));
}

TEST(DfaOps, ShortestAccepted) {
  auto sigma = ab();
  Dfa d = compile_regex("aab(a|b)*", sigma);
  auto w = shortest_accepted(d);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(to_string(*w, sigma), "aab");
  EXPECT_FALSE(shortest_accepted(empty_dfa(sigma)).has_value());
}

TEST(DfaOps, ShortestAcceptedNonEmptyWitness) {
  auto sigma = ab();
  Dfa star = compile_regex("a*", sigma);  // accepts ε
  auto w0 = shortest_accepted(star);
  ASSERT_TRUE(w0.has_value());
  EXPECT_TRUE(w0->empty());
  auto w1 = shortest_accepted(star, /*require_nonempty=*/true);
  ASSERT_TRUE(w1.has_value());
  EXPECT_EQ(to_string(*w1, sigma), "a");
}

TEST(DfaOps, EnumerateAccepted) {
  auto sigma = ab();
  Dfa d = compile_regex("a+b", sigma);
  auto words = enumerate_accepted(d, 4);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(to_string(words[0], sigma), "ab");
  EXPECT_EQ(to_string(words[1], sigma), "aab");
  EXPECT_EQ(to_string(words[2], sigma), "aaab");
}

TEST(DfaOps, PrefixesAndPrefixClosed) {
  auto sigma = ab();
  Dfa d = compile_regex("aab", sigma);
  Dfa p = prefixes(d);
  EXPECT_TRUE(p.accepts_text(""));
  EXPECT_TRUE(p.accepts_text("a"));
  EXPECT_TRUE(p.accepts_text("aa"));
  EXPECT_TRUE(p.accepts_text("aab"));
  EXPECT_FALSE(p.accepts_text("ab"));
  EXPECT_FALSE(p.accepts_text("aaba"));
  EXPECT_FALSE(is_prefix_closed(d));
  EXPECT_TRUE(is_prefix_closed(p));
  EXPECT_TRUE(is_prefix_closed(compile_regex("a*", sigma)));
}

TEST(DfaOps, SingleWord) {
  auto sigma = ab();
  Dfa d = single_word(sigma, parse_word("aba", sigma));
  EXPECT_TRUE(d.accepts_text("aba"));
  EXPECT_FALSE(d.accepts_text("ab"));
  EXPECT_FALSE(d.accepts_text("abaa"));
  EXPECT_FALSE(d.accepts_text(""));
}

TEST(DfaOps, ReachableAndCoreachable) {
  auto sigma = ab();
  Dfa d(sigma, 3, 0);
  d.set_transition(0, 0, 1);
  d.set_transition(0, 1, 1);
  d.set_transition(1, 0, 1);
  d.set_transition(1, 1, 1);
  // State 2 is unreachable and the only accepting state.
  d.set_accepting(2);
  auto reach = reachable_states(d);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
  auto live = coreachable_states(d);
  EXPECT_FALSE(live[0]);
  EXPECT_FALSE(live[1]);
  EXPECT_TRUE(live[2]);
  EXPECT_TRUE(is_empty(d));
}

TEST(Nfa, DeterminizeMatchesNfaSemantics) {
  auto sigma = ab();
  // NFA for (a|b)*ab: guess the final "ab".
  Nfa n(sigma);
  State s1 = n.add_state();
  State s2 = n.add_state();
  n.add_edge(n.initial(), 0, n.initial());
  n.add_edge(n.initial(), 1, n.initial());
  n.add_edge(n.initial(), 0, s1);
  n.add_edge(s1, 1, s2);
  n.set_accepting(s2);
  Dfa d = determinize(n);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    Word w = random_word(rng, sigma, rng.below(8));
    EXPECT_EQ(n.accepts(w), d.accepts(w)) << to_string(w, sigma);
  }
  EXPECT_TRUE(equivalent(minimize(d), compile_regex("(a|b)*ab", sigma)));
}

TEST(Nfa, EpsilonClosureChains) {
  auto sigma = ab();
  Nfa n(sigma);
  State s1 = n.add_state();
  State s2 = n.add_state();
  n.add_epsilon(n.initial(), s1);
  n.add_epsilon(s1, s2);
  n.add_edge(s2, 0, s2);
  n.set_accepting(s2);
  EXPECT_TRUE(n.accepts(parse_word("", sigma)));
  EXPECT_TRUE(n.accepts(parse_word("a", sigma)));
  EXPECT_FALSE(n.accepts(parse_word("b", sigma)));
  Dfa d = determinize(n);
  EXPECT_TRUE(equivalent(d, compile_regex("a*", sigma)));
}

TEST(DfaOps, ProductOver128SymbolAlphabet) {
  // Regression: product() buffered one transition row in a fixed
  // std::array<State, 64>, silently overflowing for alphabets past 64
  // symbols. Seven propositions give 2^7 = 128 symbols.
  auto sigma = Alphabet::of_props({"a", "b", "c", "d", "e", "f", "g"});
  ASSERT_EQ(sigma.size(), 128u);
  Rng rng(42);
  Dfa d1 = random_dfa(rng, sigma, 4);
  Dfa d2 = random_dfa(rng, sigma, 4);
  Dfa both = intersection(d1, d2);
  Dfa either = union_of(d1, d2);
  ASSERT_EQ(both.alphabet().size(), 128u);
  for (int trial = 0; trial < 100; ++trial) {
    Word w = random_word(rng, sigma, rng.below(6));
    EXPECT_EQ(both.accepts(w), d1.accepts(w) && d2.accepts(w));
    EXPECT_EQ(either.accepts(w), d1.accepts(w) || d2.accepts(w));
  }
  // De Morgan over the full 128-symbol alphabet exercises every row.
  EXPECT_TRUE(equivalent(complement(both), union_of(complement(d1), complement(d2))));
}

TEST(Nfa, ToNfaRoundTrip) {
  Rng rng(23);
  auto sigma = ab();
  for (int trial = 0; trial < 20; ++trial) {
    Dfa d = random_dfa(rng, sigma, 5);
    EXPECT_TRUE(equivalent(d, determinize(to_nfa(d))));
  }
}

}  // namespace
}  // namespace mph::lang
