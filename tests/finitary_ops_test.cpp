#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/finitary_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"

namespace mph::lang {
namespace {

Alphabet ab() { return Alphabet::plain({"a", "b"}); }

// Brute-force A_f membership per the §2 definition: every non-empty prefix
// (including the word itself) lies in Φ.
bool a_f_reference(const Dfa& phi, const Word& w) {
  if (w.empty()) return false;
  for (std::size_t len = 1; len <= w.size(); ++len)
    if (!phi.accepts(Word(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(len)))) return false;
  return true;
}

bool e_f_reference(const Dfa& phi, const Word& w) {
  for (std::size_t len = 1; len <= w.size(); ++len)
    if (phi.accepts(Word(w.begin(), w.begin() + static_cast<std::ptrdiff_t>(len)))) return true;
  return false;
}

TEST(FinitaryOps, AfPaperExample) {
  // A_f(a⁺b*) = a⁺b* (§2).
  auto sigma = ab();
  Dfa phi = compile_regex("a+b*", sigma);
  Dfa result = a_f(phi);
  // Compare within Σ⁺.
  Dfa expected = compile_regex("a+b*", sigma);
  for (const Word& w : enumerate_accepted(universal_dfa(sigma), 7)) {
    if (w.empty()) continue;
    EXPECT_EQ(result.accepts(w), expected.accepts(w)) << to_string(w, sigma);
  }
}

TEST(FinitaryOps, EfPaperExample) {
  // E_f(a⁺b*) = a⁺b*·Σ* (§2).
  auto sigma = ab();
  Dfa result = e_f(compile_regex("a+b*", sigma));
  Dfa expected = compile_regex("a+b*(a|b)*", sigma);
  for (const Word& w : enumerate_accepted(universal_dfa(sigma), 7)) {
    if (w.empty()) continue;
    EXPECT_EQ(result.accepts(w), expected.accepts(w)) << to_string(w, sigma);
  }
}

TEST(FinitaryOps, AfEfAgainstReferenceRandomized) {
  Rng rng(77);
  auto sigma = ab();
  for (int trial = 0; trial < 20; ++trial) {
    Dfa phi = random_dfa(rng, sigma, 4);
    Dfa af = a_f(phi);
    Dfa ef = e_f(phi);
    for (const Word& w : enumerate_accepted(universal_dfa(sigma), 6)) {
      if (w.empty()) continue;
      EXPECT_EQ(af.accepts(w), a_f_reference(phi, w)) << "A_f @ " << to_string(w, sigma);
      EXPECT_EQ(ef.accepts(w), e_f_reference(phi, w)) << "E_f @ " << to_string(w, sigma);
    }
  }
}

TEST(FinitaryOps, AfIsIdempotent) {
  Rng rng(13);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    Dfa phi = random_dfa(rng, sigma, 4);
    Dfa once = a_f(phi);
    Dfa twice = a_f(once);
    for (const Word& w : enumerate_accepted(universal_dfa(sigma), 6)) {
      if (w.empty()) continue;
      EXPECT_EQ(once.accepts(w), twice.accepts(w));
    }
  }
}

TEST(FinitaryOps, EfIsExtensionClosed) {
  // E_f(Φ) = Φ·Σ*: appending anything to an E_f word stays inside.
  Rng rng(99);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    Dfa phi = random_dfa(rng, sigma, 4);
    Dfa ef = e_f(phi);
    for (const Word& w : enumerate_accepted(ef, 5)) {
      if (w.empty()) continue;
      for (Symbol s = 0; s < sigma.size(); ++s) {
        Word e = w;
        e.push_back(s);
        EXPECT_TRUE(ef.accepts(e));
      }
    }
  }
}

TEST(FinitaryOps, ComplementNonEpsilon) {
  auto sigma = ab();
  Dfa phi = compile_regex("a+", sigma);
  Dfa comp = complement_nonepsilon(phi);
  EXPECT_FALSE(comp.accepts_text(""));
  EXPECT_FALSE(comp.accepts_text("aa"));
  EXPECT_TRUE(comp.accepts_text("b"));
  EXPECT_TRUE(comp.accepts_text("ab"));
  // Double complement within Σ⁺ is the identity on Σ⁺.
  Dfa back = complement_nonepsilon(comp);
  for (const Word& w : enumerate_accepted(universal_dfa(sigma), 6)) {
    if (w.empty()) continue;
    EXPECT_EQ(back.accepts(w), phi.accepts(w));
  }
}

TEST(FinitaryOps, FinitaryDualityAfEf) {
  // complement(A_f(Φ)) = E_f(complement(Φ)) within Σ⁺ (§2 duality).
  Rng rng(31);
  auto sigma = ab();
  for (int trial = 0; trial < 15; ++trial) {
    Dfa phi = random_dfa(rng, sigma, 4);
    Dfa lhs = complement_nonepsilon(a_f(phi));
    Dfa rhs = e_f(complement_nonepsilon(phi));
    for (const Word& w : enumerate_accepted(universal_dfa(sigma), 6)) {
      if (w.empty()) continue;
      EXPECT_EQ(lhs.accepts(w), rhs.accepts(w)) << to_string(w, sigma);
    }
  }
}

TEST(Minex, FirstPaperExampleCorrected) {
  // §2 gives minex((a³)⁺, (a²)⁺) = (a⁶)*a² + (a⁶)*a⁴. Following the paper's
  // own definition, a² has no proper (a³)⁺-prefix, so the (a⁶)*a² component
  // needs at least one a⁶ repetition; the definition yields
  // (a⁶)⁺a² + (a⁶)*a⁴ — see EXPERIMENTS.md (erratum E1).
  auto sigma = Alphabet::plain({"a"});
  Dfa phi1 = compile_regex("(aaa)+", sigma);
  Dfa phi2 = compile_regex("(aa)+", sigma);
  Dfa m = minex(phi1, phi2);
  Dfa expected = compile_regex("(aaaaaa)+aa|(aaaaaa)*aaaa", sigma);
  for (const Word& w : enumerate_accepted(universal_dfa(sigma), 26)) {
    if (w.empty()) continue;
    EXPECT_EQ(m.accepts(w), expected.accepts(w)) << w.size();
    EXPECT_EQ(m.accepts(w), minex_member_reference(phi1, phi2, w)) << w.size();
  }
}

TEST(Minex, SecondPaperExampleCorrected) {
  // §2 states minex((a²)⁺, (a³)⁺) = (a⁶)⁺ + (a⁶)*a³ "= Φ₁"; the set written
  // equals (a³)⁺ = Φ₂, and the definition indeed yields Φ₂ here — see
  // EXPERIMENTS.md (erratum E2).
  auto sigma = Alphabet::plain({"a"});
  Dfa phi1 = compile_regex("(aa)+", sigma);
  Dfa phi2 = compile_regex("(aaa)+", sigma);
  Dfa m = minex(phi1, phi2);
  for (const Word& w : enumerate_accepted(universal_dfa(sigma), 26)) {
    if (w.empty()) continue;
    EXPECT_EQ(m.accepts(w), phi2.accepts(w)) << w.size();
    EXPECT_EQ(m.accepts(w), minex_member_reference(phi1, phi2, w)) << w.size();
  }
}

TEST(Minex, SubsetOfPhi2) {
  Rng rng(55);
  auto sigma = ab();
  for (int trial = 0; trial < 15; ++trial) {
    Dfa phi1 = random_dfa(rng, sigma, 3);
    Dfa phi2 = random_dfa(rng, sigma, 3);
    Dfa m = minex(phi1, phi2);
    for (const Word& w : enumerate_accepted(m, 6)) {
      EXPECT_FALSE(w.empty());
      EXPECT_TRUE(phi2.accepts(w));
    }
  }
}

TEST(Minex, MatchesReferenceRandomized) {
  Rng rng(101);
  auto sigma = ab();
  for (int trial = 0; trial < 20; ++trial) {
    Dfa phi1 = random_dfa(rng, sigma, 3);
    Dfa phi2 = random_dfa(rng, sigma, 3);
    Dfa m = minex(phi1, phi2);
    for (const Word& w : enumerate_accepted(universal_dfa(sigma), 6)) {
      if (w.empty()) continue;
      EXPECT_EQ(m.accepts(w), minex_member_reference(phi1, phi2, w))
          << to_string(w, sigma) << " trial " << trial;
    }
  }
}

TEST(Minex, NeverAcceptsEpsilon) {
  Rng rng(3);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    Dfa phi1 = random_dfa(rng, sigma, 3, 3, 4);
    Dfa phi2 = random_dfa(rng, sigma, 3, 3, 4);
    EXPECT_FALSE(minex(phi1, phi2).accepts(Word{}));
  }
}

}  // namespace
}  // namespace mph::lang
