// The first-order view (§2) cross-checked against the automata view: the
// χ-formulas and the A/E/R/P operators must agree on every lasso.
#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/finitary_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/first_order.hpp"
#include "src/omega/operators.hpp"
#include "src/support/rng.hpp"

namespace mph::omega {
namespace {

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(FirstOrder, PaperExamples) {
  auto sigma = ab();
  lang::Dfa phi = lang::compile_regex("a+b*", sigma);
  // χ_A on a^ω and a⁺b^ω, not on words leaving a⁺b*.
  EXPECT_TRUE(fo_satisfies(FoOperator::A, phi, parse_lasso("(a)", sigma)));
  EXPECT_TRUE(fo_satisfies(FoOperator::A, phi, parse_lasso("aa(b)", sigma)));
  EXPECT_FALSE(fo_satisfies(FoOperator::A, phi, parse_lasso("(b)", sigma)));
  EXPECT_FALSE(fo_satisfies(FoOperator::A, phi, parse_lasso("ab(a)", sigma)));
  // χ_R on Σ*b: infinitely many b's.
  lang::Dfa ends_b = lang::compile_regex("(a|b)*b", sigma);
  EXPECT_TRUE(fo_satisfies(FoOperator::R, ends_b, parse_lasso("(ab)", sigma)));
  EXPECT_FALSE(fo_satisfies(FoOperator::R, ends_b, parse_lasso("b(a)", sigma)));
  // χ_P on Σ*b: eventually always ending in b.
  EXPECT_TRUE(fo_satisfies(FoOperator::P, ends_b, parse_lasso("aaa(b)", sigma)));
  EXPECT_FALSE(fo_satisfies(FoOperator::P, ends_b, parse_lasso("(ab)", sigma)));
}

TEST(FirstOrder, QuantifierDuality) {
  // ¬χ_A^Φ = χ_E^Φ̄ and ¬χ_R^Φ = χ_P^Φ̄ pointwise.
  Rng rng(112);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    lang::Dfa bar = lang::complement_nonepsilon(phi);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      EXPECT_NE(fo_satisfies(FoOperator::A, phi, l), fo_satisfies(FoOperator::E, bar, l));
      EXPECT_NE(fo_satisfies(FoOperator::R, phi, l), fo_satisfies(FoOperator::P, bar, l));
    }
  }
}

TEST(FirstOrder, AgreesWithAutomataViewRandomized) {
  // The two views of §2 coincide: χ_O^Φ(σ) ⇔ σ ∈ O(Φ).
  Rng rng(113);
  auto sigma = ab();
  for (int trial = 0; trial < 12; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    DetOmega a = op_a(phi), e = op_e(phi), r = op_r(phi), p = op_p(phi);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      ASSERT_EQ(fo_satisfies(FoOperator::A, phi, l), a.accepts(l)) << l.to_string(sigma);
      ASSERT_EQ(fo_satisfies(FoOperator::E, phi, l), e.accepts(l)) << l.to_string(sigma);
      ASSERT_EQ(fo_satisfies(FoOperator::R, phi, l), r.accepts(l)) << l.to_string(sigma);
      ASSERT_EQ(fo_satisfies(FoOperator::P, phi, l), p.accepts(l)) << l.to_string(sigma);
    }
  }
}

TEST(FirstOrder, ImplicationLattice) {
  // Pointwise (same Φ!): χ_A ⇒ χ_E, χ_A ⇒ χ_P ⇒ χ_R ⇒ χ_E.
  Rng rng(114);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      if (fo_satisfies(FoOperator::A, phi, l)) {
        EXPECT_TRUE(fo_satisfies(FoOperator::P, phi, l));
      }
      if (fo_satisfies(FoOperator::P, phi, l)) {
        EXPECT_TRUE(fo_satisfies(FoOperator::R, phi, l));
      }
      if (fo_satisfies(FoOperator::R, phi, l)) {
        EXPECT_TRUE(fo_satisfies(FoOperator::E, phi, l));
      }
    }
  }
}

TEST(FirstOrder, RejectsEmptyLoop) {
  auto sigma = ab();
  lang::Dfa phi = lang::compile_regex("a", sigma);
  EXPECT_THROW(fo_satisfies(FoOperator::A, phi, Lasso{{0}, {}}), std::invalid_argument);
}

}  // namespace
}  // namespace mph::omega
