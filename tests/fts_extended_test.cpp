// Extended verification scenarios: the NBA fallback path of the model
// checker (specifications outside the deterministic hierarchy fragment),
// deadlock detection on dining philosophers, and the deadlocked() atom.
#include <gtest/gtest.h>

#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/patterns.hpp"

namespace mph::fts {
namespace {

using ltl::parse_formula;
using programs::Program;

TEST(DiningPhilosophers, NaiveProtocolCanDeadlock) {
  Program prog = programs::dining_philosophers(2);
  // "Never deadlocked" is violated: the all-left-forks state is reachable.
  auto r = check(prog.system, parse_formula("G !deadlock"), prog.atoms);
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
  // The violating run ends stuttering in the deadlock state.
  EXPECT_FALSE(r.counterexample->loop.empty());
}

TEST(DiningPhilosophers, ForksAreMutuallyExclusive) {
  Program prog = programs::dining_philosophers(2);
  // Adjacent philosophers never eat together (they share both forks at n=2).
  EXPECT_TRUE(check(prog.system, parse_formula("G !(eat1 & eat2)"), prog.atoms).holds);
}

TEST(DiningPhilosophers, ThreePhilosophers) {
  Program prog = programs::dining_philosophers(3);
  EXPECT_TRUE(check(prog.system, parse_formula("G !(eat1 & eat2)"), prog.atoms).holds);
  EXPECT_FALSE(check(prog.system, parse_formula("G !deadlock"), prog.atoms).holds);
  // Eating is not guaranteed (deadlock is one obstruction).
  EXPECT_FALSE(check(prog.system, parse_formula("G(hungry1 -> F eat1)"), prog.atoms).holds);
}

TEST(Checker, DeadlockedAtomMatchesStutterStates) {
  Program prog = programs::dining_philosophers(2);
  StateGraph g = std::move(explore(prog.system, Budget()).graph);
  auto dead = deadlocked();
  bool found_deadlock = false;
  for (std::size_t n = 0; n < g.nodes.size(); ++n) {
    EXPECT_EQ(g.stutters[n],
              dead(prog.system, g.nodes[n].valuation, g.nodes[n].last_taken));
    found_deadlock = found_deadlock || g.stutters[n];
  }
  EXPECT_TRUE(found_deadlock);
}

TEST(Checker, NbaFallbackForNonFragmentSpecs) {
  // (F eat1) U deadlock is outside the deterministic hierarchy fragment
  // (until over future operands) — exercised via the NBA tableau.
  Program prog = programs::dining_philosophers(2);
  auto r = check(prog.system, parse_formula("(F eat1) U deadlock"), prog.atoms);
  // Not every fair run reaches the deadlock, so the spec fails; the point is
  // that the check *runs* through the fallback and yields a counterexample.
  EXPECT_FALSE(r.holds);
  ASSERT_TRUE(r.counterexample.has_value());
}

TEST(Checker, NbaFallbackAgreesWithDeterministicPath) {
  // A fragment spec forced through both routes must agree. G(t1 -> F c1) is
  // in the fragment; X X (F c1) ... compare a pair of semantically equal
  // specs where one parses to a fragment shape and the other doesn't.
  Program prog = programs::peterson();
  auto direct = check(prog.system, parse_formula("G(t1 -> F c1)"), prog.atoms);
  // Same property phrased with nested untils (outside the rewriter):
  // G(t1 -> (true U c1)) — the rewriter handles true U c1 → F-ish? Force
  // the fallback with an inequivalent-shape tautology conjunct:
  auto fallback =
      check(prog.system, parse_formula("G(t1 -> (true U (c1 & (c1 U c1))))"), prog.atoms);
  EXPECT_EQ(direct.holds, fallback.holds);
  EXPECT_TRUE(direct.holds);
}

TEST(Checker, ProducerConsumerNbaSpec) {
  Program prog = programs::producer_consumer(2);
  // (¬full) U full — reachable but not guaranteed: produce may never run.
  auto r = check(prog.system, parse_formula("(!full) U full"), prog.atoms);
  EXPECT_FALSE(r.holds);
  // The weaker weak-until version holds: either always non-full or
  // non-full until full.
  auto r2 = check(prog.system, parse_formula("(!full) W full"), prog.atoms);
  EXPECT_TRUE(r2.holds);
}

}  // namespace
}  // namespace mph::fts
