// Fair transition systems, model checking, and the proof rules, exercised on
// the paper's motivating examples: the mutual-exclusion story (§1), weak vs
// strong fairness (§4), and the two proof principles.
#include <gtest/gtest.h>

#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/fts/proof_rules.hpp"
#include "src/ltl/patterns.hpp"

namespace mph::fts {
namespace {

using ltl::parse_formula;
using programs::Program;

TEST(Fts, BasicConstructionAndExploration) {
  Fts s;
  std::size_t x = s.add_var("x", 0, 3, 0);
  s.add_transition(
      "inc", Fairness::Weak, [x](const Valuation& v) { return v[x] < 3; },
      [x](Valuation& v) { ++v[x]; });
  ExploreResult res = explore(s, Budget());
  ASSERT_TRUE(is_complete(res.outcome));
  StateGraph g = std::move(res.graph);
  // States: x=0..3, each reached with last_taken ∈ {none, inc}.
  // 0 is initial-only; 1..3 via inc → 4 nodes.
  EXPECT_EQ(g.nodes.size(), 4u);
  // Terminal x=3 stutters.
  bool terminal_found = false;
  for (std::size_t n = 0; n < g.nodes.size(); ++n)
    if (g.nodes[n].valuation[x] == 3) {
      EXPECT_TRUE(g.stutters[n]);
      terminal_found = true;
    }
  EXPECT_TRUE(terminal_found);
}

TEST(Fts, DomainViolationThrows) {
  Fts s;
  std::size_t x = s.add_var("x", 0, 1, 0);
  s.add_transition(
      "boom", Fairness::None, [](const Valuation&) { return true; },
      [x](Valuation& v) { v[x] = 7; });
  EXPECT_THROW(explore(s, Budget()), std::invalid_argument);
}

TEST(Fts, DuplicateVarThrows) {
  Fts s;
  s.add_var("x", 0, 1, 0);
  EXPECT_THROW(s.add_var("x", 0, 1, 0), std::invalid_argument);
  EXPECT_THROW(s.add_var("y", 0, 1, 5), std::invalid_argument);
}

TEST(Checker, TrivialMutexTellsTheIntroStory) {
  Program prog = programs::trivial_mutex();
  // Mutual exclusion holds...
  auto safety = check(prog.system, ltl::patterns::mutual_exclusion("c1", "c2"), prog.atoms);
  EXPECT_TRUE(safety.holds);
  // ...but accessibility fails: the specification was incomplete.
  auto live = check(prog.system, ltl::patterns::accessibility("t1", "c1"), prog.atoms);
  EXPECT_FALSE(live.holds);
  ASSERT_TRUE(live.counterexample.has_value());
  EXPECT_FALSE(live.counterexample->loop.empty());
}

TEST(Checker, PetersonSatisfiesBothRequirements) {
  Program prog = programs::peterson();
  EXPECT_TRUE(check(prog.system, ltl::patterns::mutual_exclusion("c1", "c2"), prog.atoms).holds);
  EXPECT_TRUE(check(prog.system, ltl::patterns::accessibility("t1", "c1"), prog.atoms).holds);
  EXPECT_TRUE(check(prog.system, ltl::patterns::accessibility("t2", "c2"), prog.atoms).holds);
}

TEST(Checker, PetersonViolatesAbsurdSpecs) {
  Program prog = programs::peterson();
  // "Process 1 never enters" is false — and the counterexample is a fair run.
  auto r = check(prog.system, parse_formula("G !c1"), prog.atoms);
  EXPECT_FALSE(r.holds);
  // "Always eventually critical" fails: both processes may stay noncritical.
  auto r2 = check(prog.system, parse_formula("G F c1"), prog.atoms);
  EXPECT_FALSE(r2.holds);
}

TEST(Checker, SemaphoreNeedsStrongFairness) {
  // Weak fairness on acquire: starvation possible.
  Program weak = programs::semaphore_mutex(2, Fairness::Weak);
  EXPECT_TRUE(check(weak.system, ltl::patterns::mutual_exclusion("c1", "c2"), weak.atoms).holds);
  auto starved = check(weak.system, ltl::patterns::accessibility("t1", "c1"), weak.atoms);
  EXPECT_FALSE(starved.holds);
  ASSERT_TRUE(starved.counterexample.has_value());
  // Strong fairness on acquire: accessibility holds.
  Program strong = programs::semaphore_mutex(2, Fairness::Strong);
  EXPECT_TRUE(
      check(strong.system, ltl::patterns::accessibility("t1", "c1"), strong.atoms).holds);
  EXPECT_TRUE(
      check(strong.system, ltl::patterns::accessibility("t2", "c2"), strong.atoms).holds);
}

TEST(Checker, SemaphoreThreeProcesses) {
  Program strong = programs::semaphore_mutex(3, Fairness::Strong);
  EXPECT_TRUE(
      check(strong.system, ltl::patterns::mutual_exclusion("c1", "c2"), strong.atoms).holds);
  EXPECT_TRUE(
      check(strong.system, ltl::patterns::mutual_exclusion("c1", "c3"), strong.atoms).holds);
  EXPECT_TRUE(
      check(strong.system, ltl::patterns::accessibility("t3", "c3"), strong.atoms).holds);
}

TEST(Checker, ProducerConsumer) {
  Program prog = programs::producer_consumer(3);
  // Safety: never full and empty at once.
  EXPECT_TRUE(check(prog.system, parse_formula("G !(full & empty)"), prog.atoms).holds);
  // When full, the weakly fair consumer eventually makes room.
  EXPECT_TRUE(check(prog.system, parse_formula("G(full -> F !full)"), prog.atoms).holds);
  // But the buffer need not drain: produce/consume may alternate above 0.
  auto drain = check(prog.system, parse_formula("G(nonempty -> F empty)"), prog.atoms);
  EXPECT_FALSE(drain.holds);
}

TEST(Checker, PrecedencePatternOnPeterson) {
  Program prog = programs::peterson();
  // A process is critical only if it was trying before: □(c1 → ◇̄t1).
  EXPECT_TRUE(check(prog.system, ltl::patterns::precedence("c1", "t1"), prog.atoms).holds);
  // The converse precedence is false.
  EXPECT_FALSE(check(prog.system, ltl::patterns::precedence("t1", "c1"), prog.atoms).holds);
}

TEST(Checker, UnknownAtomThrows) {
  Program prog = programs::peterson();
  EXPECT_THROW(check(prog.system, parse_formula("G nope"), prog.atoms),
               std::invalid_argument);
}

TEST(ProofRules, InvarianceProvesMutualExclusion) {
  Program prog = programs::peterson();
  const Fts& s = prog.system;
  std::size_t pc1 = s.var_index("pc1"), pc2 = s.var_index("pc2");
  auto mutex = [pc1, pc2](const Valuation& v) { return !(v[pc1] == 2 && v[pc2] == 2); };
  auto result = verify_invariance(prog.system, mutex);
  EXPECT_TRUE(result.proved) << result.failed_premise;
}

TEST(ProofRules, InvarianceRejectsNonInvariant) {
  Program prog = programs::peterson();
  const Fts& s = prog.system;
  std::size_t pc1 = s.var_index("pc1");
  auto never_critical = [pc1](const Valuation& v) { return v[pc1] != 2; };
  auto result = verify_invariance(prog.system, never_critical);
  EXPECT_FALSE(result.proved);
  EXPECT_TRUE(result.witness_state.has_value());
  EXPECT_EQ(result.failed_premise.substr(0, 2), "I2");
}

TEST(ProofRules, StrengtheningMustImplyGoal) {
  Program prog = programs::producer_consumer(2);
  const Fts& s = prog.system;
  std::size_t count = s.var_index("count");
  auto goal = [count](const Valuation& v) { return v[count] <= 1; };  // false in general
  auto aux = [](const Valuation&) { return true; };
  auto result = verify_invariance_with(prog.system, goal, aux);
  EXPECT_FALSE(result.proved);
  EXPECT_EQ(result.failed_premise.substr(0, 2), "I0");
}

TEST(ProofRules, ResponseProvesPetersonAccessibility) {
  Program prog = programs::peterson();
  const Fts& s = prog.system;
  const std::size_t pc1 = s.var_index("pc1"), pc2 = s.var_index("pc2");
  const std::size_t f2 = s.var_index("flag2"), turn = s.var_index("turn");
  auto trying = [pc1](const Valuation& v) { return v[pc1] == 1; };
  auto critical = [pc1](const Valuation& v) { return v[pc1] == 2; };
  // Ranking: the length of the wait chain until enter1 becomes enabled.
  // While pending (pc1 = 1, so flag1 = 1):
  //   3: p2 trying with priority (turn = 1): enter2 → exit2 → enabled
  //   2: p2 critical with turn = 1: exit2 → enabled
  //   1: enter1 enabled (f2 = 0 or turn = 0)
  auto enter1_enabled = [f2, turn](const Valuation& v) {
    return v[f2] == 0 || v[turn] == 0;
  };
  auto rank = [=](const Valuation& v) -> int {
    if (enter1_enabled(v)) return 1;
    if (v[pc2] == 2) return 2;  // p2 critical; exit2 frees the flag
    return 3;                   // p2 trying with priority; enter2 comes first
  };
  // Helpful transition per rank: 1 → enter1, 2 → exit2, 3 → enter2.
  const std::size_t enter1 = 1, enter2 = 4, exit2 = 5;  // indices per peterson()
  auto helpful = [=](const Valuation& v) -> std::size_t {
    switch (rank(v)) {
      case 1:
        return enter1;
      case 2:
        return exit2;
      default:
        return enter2;
    }
  };
  auto result = verify_response(prog.system, trying, critical, rank, helpful);
  EXPECT_TRUE(result.proved) << result.failed_premise;
}

TEST(ProofRules, ResponseRejectsTrivialMutex) {
  Program prog = programs::trivial_mutex();
  const Fts& s = prog.system;
  const std::size_t pc1 = s.var_index("pc1");
  auto trying = [pc1](const Valuation& v) { return v[pc1] == 1; };
  auto critical = [pc1](const Valuation& v) { return v[pc1] == 2; };
  auto rank = [](const Valuation&) { return 0; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto result = verify_response(prog.system, trying, critical, rank, helpful);
  EXPECT_FALSE(result.proved);
}

TEST(ProofRules, AgreementWithModelChecker) {
  // Where the response rule proves □(t1 → ◇c1), the model checker agrees.
  Program prog = programs::peterson();
  auto checked = check(prog.system, ltl::patterns::accessibility("t1", "c1"), prog.atoms);
  EXPECT_TRUE(checked.holds);
}

TEST(Checker, CounterexampleRendering) {
  Program prog = programs::trivial_mutex();
  auto live = check(prog.system, ltl::patterns::accessibility("t1", "c1"), prog.atoms);
  ASSERT_TRUE(live.counterexample.has_value());
  std::string text = live.counterexample->to_string(prog.system);
  EXPECT_NE(text.find("loop"), std::string::npos);
  EXPECT_NE(text.find("pc1="), std::string::npos);
}

}  // namespace
}  // namespace mph::fts
