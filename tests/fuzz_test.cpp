#include <gtest/gtest.h>

#include "src/fuzz/generators.hpp"
#include "src/fuzz/runner.hpp"
#include "src/fuzz/shrink.hpp"

namespace mph::fuzz {
namespace {

TEST(FuzzCase, SerializationRoundTripsPerOracle) {
  for (const auto& o : oracle_registry()) {
    for (std::uint64_t it = 0; it < 10; ++it) {
      Rng rng(iteration_seed(o.name, 7, it));
      const FuzzCase c = o.generate(rng);
      const std::string text = c.to_text();
      const FuzzCase back = FuzzCase::parse(text);
      EXPECT_EQ(back.to_text(), text) << o.name << " iteration " << it;
      EXPECT_EQ(back.oracle, o.name);
      EXPECT_EQ(back.size(), c.size());
    }
  }
}

TEST(FuzzCase, ParseRejectsGarbage) {
  EXPECT_THROW(FuzzCase::parse(""), std::invalid_argument);
  EXPECT_THROW(FuzzCase::parse("not-a-case\n"), std::invalid_argument);
  EXPECT_THROW(FuzzCase::parse("mph-fuzz-case v2\noracle x\n"), std::invalid_argument);
}

TEST(FuzzRunner, IterationSeedsAreStableAndDistinct) {
  EXPECT_EQ(iteration_seed("fts-engines", 1, 0), iteration_seed("fts-engines", 1, 0));
  EXPECT_NE(iteration_seed("fts-engines", 1, 0), iteration_seed("fts-engines", 1, 1));
  EXPECT_NE(iteration_seed("fts-engines", 1, 0), iteration_seed("fts-engines", 2, 0));
  EXPECT_NE(iteration_seed("fts-engines", 1, 0), iteration_seed("lasso-roundtrip", 1, 0));
}

TEST(FuzzRunner, ReportIsDeterministicForFixedSeed) {
  FuzzOptions opt;
  opt.seed = 3;
  opt.iters = 10;
  const FuzzReport r1 = run_fuzz(opt);
  const FuzzReport r2 = run_fuzz(opt);
  // to_text carries everything except wall-clock timings.
  EXPECT_EQ(r1.to_text(), r2.to_text());
  EXPECT_EQ(r1.total_failures(), 0u) << r1.to_text();
  EXPECT_EQ(r1.oracles.size(), oracle_registry().size());
}

TEST(FuzzRunner, ReplayOfGeneratedCasesNeverFails) {
  for (const auto& o : oracle_registry()) {
    Rng rng(iteration_seed(o.name, 11, 0));
    const FuzzCase c = o.generate(rng);
    const CheckOutcome outcome = replay(c);
    EXPECT_NE(outcome.kind, CheckOutcome::Kind::Fail) << o.name << ": " << outcome.message;
  }
}

TEST(FuzzRunner, UnknownOracleThrows) {
  FuzzOptions opt;
  opt.oracles = {"no-such-oracle"};
  EXPECT_THROW(run_fuzz(opt), std::invalid_argument);
  EXPECT_EQ(find_oracle("no-such-oracle"), nullptr);
  EXPECT_NE(find_oracle("fts-engines"), nullptr);
}

TEST(FuzzShrink, DeterministicAndLocallyMinimal) {
  const Oracle* o = find_oracle("dfa-product-laws");
  ASSERT_NE(o, nullptr);
  Rng rng(iteration_seed(o->name, 5, 0));
  const FuzzCase c = o->generate(rng);
  // Stand-in failure: "the first DFA has at least two states". The shrinker
  // must reach a local minimum (two states, nothing else left to strip)
  // and do so identically on every run.
  const auto fails = [](const FuzzCase& cand) {
    return !cand.dfas.empty() && cand.dfas[0].state_count() >= 2;
  };
  ASSERT_TRUE(fails(c));
  ShrinkStats s1, s2;
  const FuzzCase r1 = shrink(c, fails, &s1);
  const FuzzCase r2 = shrink(c, fails, &s2);
  EXPECT_EQ(r1.to_text(), r2.to_text());
  EXPECT_EQ(s1.attempts, s2.attempts);
  EXPECT_EQ(s1.accepted, s2.accepted);
  EXPECT_TRUE(fails(r1));
  EXPECT_EQ(r1.dfas[0].state_count(), 2u);
  EXPECT_LE(r1.size(), c.size());
  // Shrunk output is still a well-formed, replayable case.
  EXPECT_EQ(FuzzCase::parse(r1.to_text()).to_text(), r1.to_text());
}

TEST(FuzzShrink, PredicateExceptionsCountAsNotFailing) {
  const Oracle* o = find_oracle("lasso-roundtrip");
  ASSERT_NE(o, nullptr);
  Rng rng(iteration_seed(o->name, 9, 0));
  const FuzzCase c = o->generate(rng);
  // A predicate that throws on every candidate: shrinking must return the
  // original case unchanged instead of propagating or looping.
  ShrinkStats stats;
  const FuzzCase r = shrink(c, [](const FuzzCase&) -> bool {
    throw std::runtime_error("oracle blew up");
  }, &stats);
  EXPECT_EQ(r.to_text(), c.to_text());
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(FuzzRunner, PerIterationBudgetAbandonsInsteadOfFailing) {
  FuzzOptions opt;
  opt.seed = 1;
  opt.iters = 12;
  opt.oracles = {"fts-engines"};
  opt.iter_budget_states = 1;  // no real system/product fits in one state
  analysis::DiagnosticEngine diags;
  const FuzzReport r = run_fuzz(opt, &diags);
  ASSERT_EQ(r.oracles.size(), 1u);
  // Exhaustion is not a discrepancy: the campaign keeps going and exits green.
  EXPECT_EQ(r.total_failures(), 0u) << r.to_text();
  EXPECT_GT(r.oracles[0].budget_exhausted, 0u);
  EXPECT_TRUE(diags.has_code("MPH-X004"));
  EXPECT_FALSE(diags.has_errors());  // MPH-X004 is a warning
  // A state-cap budget is deterministic (no clock involved): the same seed
  // exhausts the same iterations.
  const FuzzReport again = run_fuzz(opt);
  EXPECT_EQ(again.oracles[0].budget_exhausted, r.oracles[0].budget_exhausted);
  EXPECT_EQ(again.to_text(), r.to_text());
  EXPECT_NE(r.to_json().find("\"budget_exhausted\""), std::string::npos);
}

TEST(FuzzOracles, ClassifyMonoidBudgetCorpusCaseExhausts) {
  // Mirror of tests/corpus/classify-monoid-budget.fuzz: the 12 raise/lower
  // (Aizenstat) generators of the order-preserving monoid O_7 on a 7-chain.
  // O_7 has C(13,6) = 1716 elements, every one aperiodic, so the
  // counter-freedom enumeration hits the oracle-internal monoid cap without
  // ever finding a counter: verdict Unknown -> Kind::Budget, not a failure.
  std::vector<std::string> letters;
  for (char ch = 'a'; ch < 'a' + 12; ++ch) letters.emplace_back(1, ch);
  lang::Alphabet sigma = lang::Alphabet::plain(letters);
  omega::DetOmega m(sigma, 7, 0, omega::Acceptance::inf(0));
  m.add_mark(0, 0);
  for (lang::State q = 0; q < 7; ++q)
    for (lang::Symbol i = 0; i < 6; ++i) {
      m.set_transition(q, 2 * i, q == i + 1 ? i : q);      // lower i+1 -> i
      m.set_transition(q, 2 * i + 1, q == i ? i + 1 : q);  // raise i -> i+1
    }
  FuzzCase c;
  c.oracle = "classify-vs-forms";
  c.alphabet = sigma;
  c.automata.push_back(m);
  const Oracle* oracle = find_oracle("classify-vs-forms");
  ASSERT_NE(oracle, nullptr);
  const CheckOutcome outcome = oracle->check(c, Budget{});
  EXPECT_EQ(outcome.kind, CheckOutcome::Kind::Budget) << outcome.message;
  // Replay treats a Budget outcome as a clean exit, so the stored corpus
  // twin keeps the regression suite green.
  EXPECT_EQ(replay(c).kind, CheckOutcome::Kind::Budget);
}

TEST(FuzzSpec, BuildProducesRunnableSystem) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const FtsSpec spec = random_fts(rng);
    const fts::Fts sys = spec.build();
    EXPECT_GE(sys.transition_count(), 1u);
    const fts::AtomMap atoms = spec.atoms();
    EXPECT_EQ(atoms.size(), 2 * spec.vars.size());
    // Every "<v>hi"/"<v>lo" atom evaluates on the initial valuation.
    for (const auto& [name, fn] : atoms)
      (void)fn(sys, sys.initial_valuation(), /*last_taken=*/-1);
  }
}

}  // namespace
}  // namespace mph::fuzz
