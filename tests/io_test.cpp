#include <gtest/gtest.h>

#include "src/lang/regex.hpp"
#include "src/omega/io.hpp"
#include "src/omega/operators.hpp"

namespace mph::omega {
namespace {

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(Dot, DfaContainsStatesAndEdges) {
  lang::Dfa d = lang::compile_regex("a+b*", ab());
  std::string dot = to_dot(d, "phi");
  EXPECT_NE(dot.find("digraph \"phi\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // accepting state
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("init ->"), std::string::npos);
}

TEST(Dot, OmegaShowsAcceptanceAndMarks) {
  DetOmega m = op_r(lang::compile_regex("(a*b)+", ab()));
  std::string dot = to_dot(m);
  EXPECT_NE(dot.find("acceptance: Inf(0)"), std::string::npos);
  EXPECT_NE(dot.find("{0}"), std::string::npos);  // marked state
}

TEST(Hoa, HeaderFieldsForPlainAlphabet) {
  DetOmega m = op_r(lang::compile_regex("(a*b)+", ab()));
  std::string hoa = to_hoa(m, "recurrence-witness");
  EXPECT_NE(hoa.find("HOA: v1"), std::string::npos);
  EXPECT_NE(hoa.find("name: \"recurrence-witness\""), std::string::npos);
  EXPECT_NE(hoa.find("Start: "), std::string::npos);
  EXPECT_NE(hoa.find("Acceptance: 1 Inf(0)"), std::string::npos);
  // Plain 2-letter alphabet → 1 synthetic AP.
  EXPECT_NE(hoa.find("AP: 1 \"b0\""), std::string::npos);
  EXPECT_NE(hoa.find("--BODY--"), std::string::npos);
  EXPECT_NE(hoa.find("--END--"), std::string::npos);
}

TEST(Hoa, PropositionalAlphabetUsesPropNames) {
  auto sigma = lang::Alphabet::of_props({"p", "q"});
  DetOmega m(sigma, 1, 0, Acceptance::buchi(0));
  m.add_mark(0, 0);
  std::string hoa = to_hoa(m);
  EXPECT_NE(hoa.find("AP: 2 \"p\" \"q\""), std::string::npos);
  // Four symbols → four labelled edges from state 0; check the {p,q} label.
  EXPECT_NE(hoa.find("[0&1] 0"), std::string::npos);
  EXPECT_NE(hoa.find("[!0&!1] 0"), std::string::npos);
  // Marked state.
  EXPECT_NE(hoa.find("State: 0 {0}"), std::string::npos);
}

TEST(Hoa, StreettAcceptanceRendered) {
  auto sigma = ab();
  DetOmega m(sigma, 2, 0, Acceptance::streett(2));
  std::string hoa = to_hoa(m);
  EXPECT_NE(hoa.find("Acceptance: 4"), std::string::npos);
  EXPECT_NE(hoa.find("Inf(0)"), std::string::npos);
  EXPECT_NE(hoa.find("Fin(3)"), std::string::npos);
}

TEST(Hoa, EveryStateListsAllSymbols) {
  auto sigma = lang::Alphabet::plain({"a", "b", "c"});
  DetOmega m = op_e(lang::compile_regex("(a|b|c)*c", sigma));
  std::string hoa = to_hoa(m);
  // 3 letters → 2 synthetic APs; each state lists 3 edges.
  std::size_t count = 0, pos = 0;
  while ((pos = hoa.find("\n  [", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, m.state_count() * 3);
}

}  // namespace
}  // namespace mph::omega
