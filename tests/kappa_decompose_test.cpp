// Structural κ-automaton checks, the Proposition 5.1 constructions, and the
// safety–liveness decomposition (§2) with uniform liveness.
#include <gtest/gtest.h>

#include "src/core/decompose.hpp"
#include "src/core/kappa_automata.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "tests/omega_test_util.hpp"

namespace mph::core {
namespace {

using lang::compile_regex;
using omega::DetOmega;
using omega::StreettPair;
using omega::testutil::expect_same_language;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(KappaShapes, StructuralChecks) {
  auto sigma = ab();
  // 3-state automaton: 0 ↔ 1 cycle, 2 absorbing.
  DetOmega m(sigma, 3, 0, omega::Acceptance::t());
  m.set_transition(0, 0, 1);
  m.set_transition(0, 1, 2);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 2);
  m.set_transition(2, 0, 2);
  m.set_transition(2, 1, 2);
  // G = {0,1}: transitions G→B={2} exist but none B→G: safety shape.
  StreettPair safety_pair{{0, 1}, {}};
  EXPECT_TRUE(is_safety_shaped(m, safety_pair));
  EXPECT_FALSE(is_guarantee_shaped(m, safety_pair));
  // G = {2}: guarantee shape (once in 2, never out).
  StreettPair guarantee_pair{{2}, {}};
  EXPECT_TRUE(is_guarantee_shaped(m, guarantee_pair));
  EXPECT_FALSE(is_safety_shaped(m, guarantee_pair));
  // Recurrence/persistence shapes are about the pair itself.
  EXPECT_TRUE(is_recurrence_shaped(StreettPair{{0}, {}}));
  EXPECT_FALSE(is_recurrence_shaped(StreettPair{{0}, {1}}));
  EXPECT_TRUE(is_persistence_shaped(StreettPair{{}, {1}}));
  EXPECT_FALSE(is_persistence_shaped(StreettPair{{0}, {1}}));
}

TEST(KappaShapes, SimpleObligationShape) {
  auto sigma = ab();
  // 0 (in P) → 1 (in B) → 2 (in R), no way back: simple obligation shape.
  DetOmega m(sigma, 3, 0, omega::Acceptance::t());
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 1);
  m.set_transition(1, 1, 2);
  m.set_transition(2, 0, 2);
  m.set_transition(2, 1, 2);
  EXPECT_TRUE(is_simple_obligation_shaped(m, StreettPair{{2}, {0}}));
  // A pair allowing return into P violates the shape.
  DetOmega back = m;
  back.set_transition(1, 0, 0);
  EXPECT_FALSE(is_simple_obligation_shaped(back, StreettPair{{2}, {0}}));
}

TEST(KappaConstructions, RoundTripPreservesLanguage) {
  Rng rng(91);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    DetOmega a = omega::op_a(phi);
    DetOmega e = omega::op_e(phi);
    DetOmega r = omega::op_r(phi);
    DetOmega p = omega::op_p(phi);
    expect_same_language(to_safety_automaton(a), a, "safety construction");
    expect_same_language(to_guarantee_automaton(e), e, "guarantee construction");
    expect_same_language(to_recurrence_automaton(r), r, "recurrence construction");
    expect_same_language(to_persistence_automaton(p), p, "persistence construction");
    // Cross-class constructions also succeed when the language admits them:
    // safety ⊆ recurrence, so a recurrence automaton for `a` must exist.
    expect_same_language(to_recurrence_automaton(a), a, "safety as recurrence");
    expect_same_language(to_persistence_automaton(e), e, "guarantee as persistence");
  }
}

TEST(KappaConstructions, ProducedShapesAreCanonical) {
  auto sigma = ab();
  DetOmega a = to_safety_automaton(omega::op_a(compile_regex("a+b*", sigma)));
  EXPECT_EQ(a.acceptance().kind(), omega::Acceptance::Kind::Fin);
  DetOmega r = to_recurrence_automaton(omega::op_r(compile_regex("(a*b)+", sigma)));
  EXPECT_EQ(r.acceptance().kind(), omega::Acceptance::Kind::Inf);
  DetOmega p = to_persistence_automaton(omega::op_p(compile_regex("(a|b)*a", sigma)));
  EXPECT_EQ(p.acceptance().kind(), omega::Acceptance::Kind::Fin);
}

TEST(KappaConstructions, ThrowOutsideTheClass) {
  auto sigma = ab();
  DetOmega rec = omega::op_r(compile_regex("(a*b)+", sigma));       // strictly recurrence
  DetOmega pers = omega::op_p(compile_regex("(a|b)*a", sigma));     // strictly persistence
  EXPECT_THROW(to_safety_automaton(rec), std::invalid_argument);
  EXPECT_THROW(to_guarantee_automaton(rec), std::invalid_argument);
  EXPECT_THROW(to_persistence_automaton(rec), std::invalid_argument);
  EXPECT_THROW(to_recurrence_automaton(pers), std::invalid_argument);
}

TEST(Decompose, PartsHaveTheRightCharacter) {
  Rng rng(97);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m : {omega::op_e(phi), omega::op_r(phi), omega::op_p(phi)}) {
      if (omega::is_empty(m)) continue;
      auto parts = sl_decompose(m);
      EXPECT_TRUE(is_safety(parts.safety_part));
      EXPECT_TRUE(omega::is_liveness(parts.liveness_part));
      expect_same_language(intersection(parts.safety_part, parts.liveness_part), m,
                           "Π = Π_S ∩ Π_L");
    }
  }
}

TEST(Decompose, LiveKappaPreservation) {
  // If Π is recurrence, its liveness extension stays recurrence (§2: the
  // non-safety classes are closed under union with guarantee properties).
  auto sigma = ab();
  DetOmega rec = omega::op_r(compile_regex("(a*b)+", sigma));
  DetOmega guarded = intersection(rec, omega::op_a(compile_regex("a(a|b)*", sigma)));
  auto parts = sl_decompose(guarded);
  EXPECT_TRUE(is_recurrence(parts.liveness_part));
  // Dually for persistence.
  DetOmega pers = intersection(omega::op_p(compile_regex("(a|b)*a", sigma)),
                               omega::op_a(compile_regex("a(a|b)*", sigma)));
  auto parts2 = sl_decompose(pers);
  EXPECT_TRUE(is_persistence(parts2.liveness_part));
}

TEST(Decompose, UniformLivenessExamples) {
  auto sigma = ab();
  // ◇b: any word extends with b^ω — the same σ' works for all: uniform.
  EXPECT_TRUE(is_uniform_liveness(omega::op_e(compile_regex("(a|b)*b", sigma))));
  // □◇b: uniform (append b^ω).
  EXPECT_TRUE(is_uniform_liveness(omega::op_r(compile_regex("(a|b)*b", sigma))));
  // Safety a^ω+a⁺b^ω: not even liveness, certainly not uniform.
  EXPECT_FALSE(is_uniform_liveness(omega::op_a(compile_regex("a+b*", sigma))));
}

TEST(Decompose, PaperWitnessIsActuallyUniform) {
  // §2 offers a·Σ*·aa·Σ^ω + b·Σ*·bb·Σ^ω as live-but-not-uniformly-live, but
  // σ' = aabb·b^ω extends *every* non-empty finite word into the property
  // (erratum E5, see EXPERIMENTS.md). We assert the fact the paper intended
  // with a corrected witness below.
  auto sigma = ab();
  DetOmega m = union_of(omega::op_e(compile_regex("a(a|b)*aa", sigma)),
                        omega::op_e(compile_regex("b(a|b)*bb", sigma)));
  EXPECT_TRUE(omega::is_liveness(m));
  EXPECT_TRUE(is_uniform_liveness(m));
}

TEST(Decompose, CorrectedNonUniformLivenessWitness) {
  // "The first letter occurs only finitely often": live (extend a-words by
  // b^ω and vice versa) but no single σ' can be both eventually a-free and
  // eventually b-free.
  auto sigma = ab();
  DetOmega starts_a = omega::op_a(compile_regex("a(a|b)*", sigma));
  DetOmega starts_b = omega::op_a(compile_regex("b(a|b)*", sigma));
  DetOmega fin_a = omega::op_p(compile_regex("(a|b)*b", sigma));
  DetOmega fin_b = omega::op_p(compile_regex("(a|b)*a", sigma));
  DetOmega m = union_of(intersection(starts_a, fin_a), intersection(starts_b, fin_b));
  EXPECT_TRUE(omega::is_liveness(m));
  EXPECT_FALSE(is_uniform_liveness(m));
}

}  // namespace
}  // namespace mph::core
