#include <gtest/gtest.h>

#include "src/omega/lasso.hpp"

namespace mph::omega {
namespace {

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(Lasso, AtIndexesThroughLoop) {
  Lasso l = parse_lasso("ab(ba)", ab());
  // a b | b a b a b a ...
  EXPECT_EQ(l.at(0), 0u);
  EXPECT_EQ(l.at(1), 1u);
  EXPECT_EQ(l.at(2), 1u);
  EXPECT_EQ(l.at(3), 0u);
  EXPECT_EQ(l.at(4), 1u);
  EXPECT_EQ(l.at(100), 1u);  // (100-2) % 2 == 0 → loop[0] = b
}

TEST(Lasso, AtExactLoopSymbols) {
  Lasso l = parse_lasso("(ab)", ab());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(l.at(i), i % 2 == 0 ? 0u : 1u);
}

TEST(Lasso, ToString) {
  EXPECT_EQ(parse_lasso("ab(ba)", ab()).to_string(ab()), "ab(ba)^ω");
  EXPECT_EQ(parse_lasso("(a)", ab()).to_string(ab()), "(a)^ω");
}

TEST(Lasso, ParseRejectsEmptyLoop) {
  EXPECT_THROW(parse_lasso("ab()", ab()), std::invalid_argument);
  EXPECT_THROW(parse_lasso("ab", ab()), std::invalid_argument);
}

TEST(Lasso, ParseRejectsMalformedGroups) {
  // Regression: the parser used to split on the first '(' and ignore
  // everything after the matching ')', silently misreading these.
  EXPECT_THROW(parse_lasso("", ab()), std::invalid_argument);
  EXPECT_THROW(parse_lasso("()", ab()), std::invalid_argument);
  EXPECT_THROW(parse_lasso("a(b)(a)", ab()), std::invalid_argument);  // second group
  EXPECT_THROW(parse_lasso("a(b)b", ab()), std::invalid_argument);    // trailing symbol
  EXPECT_THROW(parse_lasso("a(b", ab()), std::invalid_argument);      // unclosed
  EXPECT_THROW(parse_lasso("a)b(a)", ab()), std::invalid_argument);   // stray ')'
}

TEST(Lasso, ParseErrorsNamePosition) {
  try {
    parse_lasso("a(b)(a)", ab());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("trailing characters"), std::string::npos) << what;
    EXPECT_NE(what.find("position 3"), std::string::npos) << what;
  }
  try {
    parse_lasso("a(b", ab());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("position 1"), std::string::npos) << e.what();
  }
}

TEST(Lasso, SameWordDifferentSplits) {
  // a(ba)^ω = ab(ab)^ω = (ab... wait: a·bababa... = ab·ababa...
  Lasso l1 = parse_lasso("a(ba)", ab());
  Lasso l2 = parse_lasso("ab(ab)", ab());
  EXPECT_TRUE(l1.same_word(l2));
  Lasso l3 = parse_lasso("(abab)", ab());
  Lasso l4 = parse_lasso("(ab)", ab());
  EXPECT_TRUE(l3.same_word(l4));
  // a(ba)^ω denotes the same word as (ab)^ω:
  EXPECT_TRUE(l1.same_word(l4));
  EXPECT_FALSE(parse_lasso("b(ab)", ab()).same_word(l4));
  EXPECT_FALSE(parse_lasso("(aab)", ab()).same_word(l4));
}

TEST(Lasso, SameWordUnrolledLoop) {
  Lasso l1 = parse_lasso("(aab)", ab());
  Lasso l2 = parse_lasso("aab(aabaab)", ab());
  EXPECT_TRUE(l1.same_word(l2));
}

TEST(Lasso, EnumerateCounts) {
  // prefixes of length ≤1 over 2 letters: 1 + 2 = 3; loops of length 1..2:
  // 2 + 4 = 6 → 18 lassos.
  auto ls = enumerate_lassos(ab(), 1, 2);
  EXPECT_EQ(ls.size(), 18u);
  for (const auto& l : ls) EXPECT_FALSE(l.loop.empty());
}

TEST(Lasso, EnumerateDistinctAsSplits) {
  auto ls = enumerate_lassos(ab(), 0, 2);
  // loops: a, b, aa, ab, ba, bb → 6 lassos with empty prefix.
  EXPECT_EQ(ls.size(), 6u);
}

}  // namespace
}  // namespace mph::omega
