#include <gtest/gtest.h>

#include "src/ltl/ast.hpp"

namespace mph::ltl {
namespace {

TEST(Ast, FactoriesAndAccessors) {
  Formula f = f_until(f_atom("p"), f_and(f_atom("q"), f_not(f_atom("p"))));
  EXPECT_EQ(f.op(), Op::Until);
  EXPECT_EQ(f.arity(), 2u);
  EXPECT_EQ(f.child(0).atom_name(), "p");
  EXPECT_EQ(f.size(), 6u);
  auto atoms = f.atoms();
  ASSERT_EQ(atoms.size(), 2u);
  EXPECT_EQ(atoms[0], "p");
  EXPECT_EQ(atoms[1], "q");
}

TEST(Ast, StructuralEquality) {
  EXPECT_EQ(f_and(f_atom("p"), f_atom("q")), f_and(f_atom("p"), f_atom("q")));
  EXPECT_FALSE(f_and(f_atom("p"), f_atom("q")) == f_and(f_atom("q"), f_atom("p")));
  EXPECT_EQ(f_first(), f_weak_prev(f_false()));
}

TEST(Ast, FutureAndPastDetection) {
  EXPECT_TRUE(f_eventually(f_atom("p")).has_future());
  EXPECT_FALSE(f_eventually(f_atom("p")).has_past());
  EXPECT_TRUE(f_once(f_atom("p")).has_past());
  EXPECT_TRUE(f_once(f_atom("p")).is_past_formula());
  EXPECT_TRUE(f_atom("p").is_state());
  EXPECT_FALSE(f_always(f_once(f_atom("p"))).is_past_formula());
  EXPECT_TRUE(f_and(f_atom("p"), f_since(f_atom("q"), f_atom("r"))).is_past_formula());
}

TEST(Ast, WrongArityThrows) {
  EXPECT_THROW(f_unary(Op::Until, f_atom("p")), std::invalid_argument);
  EXPECT_THROW(f_binary(Op::Next, f_atom("p"), f_atom("q")), std::invalid_argument);
  EXPECT_THROW(f_atom(""), std::invalid_argument);
}

TEST(Parser, AtomsAndConstants) {
  EXPECT_EQ(parse_formula("p"), f_atom("p"));
  EXPECT_EQ(parse_formula("in_critical1"), f_atom("in_critical1"));
  EXPECT_EQ(parse_formula("true"), f_true());
  EXPECT_EQ(parse_formula("false"), f_false());
}

TEST(Parser, PrecedenceBooleans) {
  // & binds tighter than |, which binds tighter than ->.
  EXPECT_EQ(parse_formula("p & q | r"), f_or(f_and(f_atom("p"), f_atom("q")), f_atom("r")));
  EXPECT_EQ(parse_formula("p -> q | r"), f_implies(f_atom("p"), f_or(f_atom("q"), f_atom("r"))));
  EXPECT_EQ(parse_formula("p <-> q -> r"),
            f_iff(f_atom("p"), f_implies(f_atom("q"), f_atom("r"))));
}

TEST(Parser, TemporalOperators) {
  EXPECT_EQ(parse_formula("G F p"), f_always(f_eventually(f_atom("p"))));
  EXPECT_EQ(parse_formula("p U q"), f_until(f_atom("p"), f_atom("q")));
  EXPECT_EQ(parse_formula("p U q U r"),
            f_until(f_atom("p"), f_until(f_atom("q"), f_atom("r"))));  // right-assoc
  EXPECT_EQ(parse_formula("X !p"), f_next(f_not(f_atom("p"))));
  EXPECT_EQ(parse_formula("p S q"), f_since(f_atom("p"), f_atom("q")));
  EXPECT_EQ(parse_formula("H (p -> O q)"),
            f_historically(f_implies(f_atom("p"), f_once(f_atom("q")))));
}

TEST(Parser, TemporalBindsTighterThanAnd) {
  EXPECT_EQ(parse_formula("p U q & r"), f_and(f_until(f_atom("p"), f_atom("q")), f_atom("r")));
}

TEST(Parser, Errors) {
  EXPECT_THROW(parse_formula(""), std::invalid_argument);
  EXPECT_THROW(parse_formula("(p"), std::invalid_argument);
  EXPECT_THROW(parse_formula("p q"), std::invalid_argument);
  EXPECT_THROW(parse_formula("p &"), std::invalid_argument);
  EXPECT_THROW(parse_formula("U p"), std::invalid_argument);
  EXPECT_THROW(parse_formula("G"), std::invalid_argument);
}

TEST(Parser, DeepNestingIsRejectedWithAPositionedError) {
  // 100k leading '(' or '!' used to overflow the native stack (one chain of
  // recursive-descent frames per level); the parser now refuses past its
  // nesting-depth guard with a positioned invalid_argument instead.
  constexpr std::size_t kDeep = 100'000;
  const std::string parens = std::string(kDeep, '(') + "p" + std::string(kDeep, ')');
  try {
    parse_formula(parens);
    FAIL() << "expected the depth guard to fire";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nesting"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("position"), std::string::npos) << e.what();
  }
  EXPECT_THROW(parse_formula(std::string(kDeep, '!') + "p"), std::invalid_argument);
}

TEST(Parser, ModerateNestingStillParses) {
  constexpr std::size_t kDepth = 400;  // well inside the guard
  const std::string parens = std::string(kDepth, '(') + "p" + std::string(kDepth, ')');
  EXPECT_EQ(parse_formula(parens), f_atom("p"));
  Formula bangs = parse_formula(std::string(kDepth, '!') + "p");
  EXPECT_EQ(bangs.op(), Op::Not);
  EXPECT_EQ(bangs.size(), kDepth + 1);
}

TEST(Ast, DeepChainDestroysWithoutRecursion) {
  // Build a 100k-deep X-chain bottom-up (each factory call is one level, no
  // recursion), then let it go out of scope: the iterative Node destructor
  // must tear it down without one stack frame per level.
  constexpr std::size_t kDeep = 100'000;
  {
    Formula f = f_atom("p");
    for (std::size_t i = 0; i < kDeep; ++i) f = f_next(std::move(f));
    EXPECT_EQ(f.op(), Op::Next);
  }  // destruction happens here
  // Shared subtrees survive their co-owner's teardown.
  Formula shared = f_atom("q");
  {
    Formula chain = shared;
    for (std::size_t i = 0; i < kDeep; ++i) chain = f_next(std::move(chain));
  }
  EXPECT_EQ(shared.atom_name(), "q");
}

TEST(Printer, RoundTripsThroughParser) {
  const char* samples[] = {
      "p",
      "!p",
      "p & q | r",
      "G(p -> F q)",
      "G F p | F G q",
      "(p U q) & (r W s)",
      "X X p",
      "G(q -> O p)",
      "F(q & Z H p)",
      "p S (q B r)",
      "(p -> q) <-> (!q -> !p)",
  };
  for (const char* s : samples) {
    Formula f = parse_formula(s);
    Formula g = parse_formula(f.to_string());
    EXPECT_EQ(f, g) << s << " printed as " << f.to_string();
  }
}

}  // namespace
}  // namespace mph::ltl
