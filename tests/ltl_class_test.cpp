// Syntactic vs semantic classification of formulas, including the paper's
// responsiveness summary (§4) and fairness notions.
#include <gtest/gtest.h>

#include "src/core/classify.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/omega/emptiness.hpp"
#include "src/ltl/patterns.hpp"
#include "src/ltl/semantic.hpp"
#include "src/ltl/syntactic.hpp"

namespace mph::ltl {
namespace {

using core::Classification;
using core::PropertyClass;

lang::Alphabet pq() { return lang::Alphabet::of_props({"p", "q"}); }

Classification semantic(const Formula& f, const lang::Alphabet& a) {
  return core::classify(compile(f, a));
}

TEST(Syntactic, CanonicalFormsGetTheirClasses) {
  EXPECT_EQ(syntactic_classification(parse_formula("G p")).lowest(), PropertyClass::Safety);
  EXPECT_EQ(syntactic_classification(parse_formula("F p")).lowest(), PropertyClass::Guarantee);
  EXPECT_EQ(syntactic_classification(parse_formula("G p | F q")).lowest(),
            PropertyClass::Obligation);
  EXPECT_EQ(syntactic_classification(parse_formula("G F p")).lowest(),
            PropertyClass::Recurrence);
  EXPECT_EQ(syntactic_classification(parse_formula("F G p")).lowest(),
            PropertyClass::Persistence);
  EXPECT_EQ(syntactic_classification(parse_formula("G F p | F G q")).lowest(),
            PropertyClass::Reactivity);
}

TEST(Syntactic, GrammarRules) {
  // U over guarantee args is guarantee; R over safety args is safety.
  EXPECT_TRUE(syntactic_classification(parse_formula("p U (q U p)")).guarantee);
  EXPECT_TRUE(syntactic_classification(parse_formula("p R (q R p)")).safety);
  EXPECT_TRUE(syntactic_classification(parse_formula("p W q")).safety);
  // X preserves class.
  EXPECT_TRUE(syntactic_classification(parse_formula("X G p")).safety);
  EXPECT_TRUE(syntactic_classification(parse_formula("X F p")).guarantee);
  // G of recurrence stays recurrence; F of persistence stays persistence.
  EXPECT_TRUE(syntactic_classification(parse_formula("G(G F p)")).recurrence);
  EXPECT_TRUE(syntactic_classification(parse_formula("F(F G p)")).persistence);
  // G of guarantee is recurrence (but not guarantee).
  auto c = syntactic_classification(parse_formula("G F p"));
  EXPECT_TRUE(c.recurrence);
  EXPECT_FALSE(c.guarantee);
  // Negation dualizes.
  EXPECT_TRUE(syntactic_classification(parse_formula("!(G p)")).guarantee);
  EXPECT_TRUE(syntactic_classification(parse_formula("!(G F p)")).persistence);
}

TEST(Syntactic, SoundnessAgainstSemantics) {
  auto a = pq();
  const char* corpus[] = {
      "G p",         "F p",           "G F p",        "F G p",      "G p | F q",
      "G p & F q",   "!(F p)",        "p U q",        "p W q",      "p R q",
      "G(p -> F q)", "G F p | F G q", "G F p & G F q", "F p -> F q",
  };
  for (const char* s : corpus) {
    Formula f = parse_formula(s);
    Classification syn = syntactic_classification(f);
    Classification sem = semantic(f, a);
    // Syntactic membership must imply semantic membership.
    for (PropertyClass c : {PropertyClass::Safety, PropertyClass::Guarantee,
                            PropertyClass::Obligation, PropertyClass::Recurrence,
                            PropertyClass::Persistence}) {
      if (syn.is(c)) {
        EXPECT_TRUE(sem.is(c)) << s << " claimed " << to_string(c);
      }
    }
  }
}

TEST(Responsiveness, SummaryTableClasses) {
  // The §4 summary: five responsiveness variants land in five classes.
  auto a = pq();
  EXPECT_EQ(semantic(patterns::respond_initial("p", "q"), a).lowest(),
            PropertyClass::Guarantee);
  EXPECT_EQ(semantic(patterns::respond_once("p", "q"), a).lowest(), PropertyClass::Obligation);
  EXPECT_EQ(semantic(patterns::respond_always("p", "q"), a).lowest(),
            PropertyClass::Recurrence);
  EXPECT_EQ(semantic(patterns::respond_stabilize("p", "q"), a).lowest(),
            PropertyClass::Persistence);
  EXPECT_EQ(semantic(patterns::respond_infinitely("p", "q"), a).lowest(),
            PropertyClass::Reactivity);
}

TEST(Responsiveness, OrderedByStrengthOfTrigger) {
  // Stronger commitments imply weaker ones where the paper's hierarchy says
  // so: □(p→◇q) ⊆ ◇p→◇(q∧◇̄p)? Not in general — but all imply the initial
  // response p→◇q.
  auto a = pq();
  auto always = compile(patterns::respond_always("p", "q"), a);
  auto initial = compile(patterns::respond_initial("p", "q"), a);
  EXPECT_TRUE(omega::contains(initial, always));
}

TEST(Fairness, WeakIsRecurrenceStrongIsReactivity) {
  auto a = lang::Alphabet::of_props({"en", "tk"});
  auto weak = semantic(patterns::weak_fairness("en", "tk"), a);
  EXPECT_EQ(weak.lowest(), PropertyClass::Recurrence);
  auto strong = semantic(patterns::strong_fairness("en", "tk"), a);
  EXPECT_EQ(strong.lowest(), PropertyClass::Reactivity);
  // Weak fairness follows from strong fairness... no: strong fairness implies
  // weak fairness as a *requirement on schedulers*; as languages, strong ⊆
  // weak — check it.
  EXPECT_TRUE(omega::contains(compile(patterns::weak_fairness("en", "tk"), a),
                              compile(patterns::strong_fairness("en", "tk"), a)));
}

TEST(Patterns, SafetyPatterns) {
  auto a2 = lang::Alphabet::of_props({"t", "post"});
  EXPECT_TRUE(semantic(patterns::partial_correctness("t", "post"), a2).safety);
  auto a3 = lang::Alphabet::of_props({"pre", "t", "post"});
  EXPECT_TRUE(semantic(patterns::full_partial_correctness("pre", "t", "post"), a3).safety);
  auto am = lang::Alphabet::of_props({"c1", "c2"});
  EXPECT_TRUE(semantic(patterns::mutual_exclusion("c1", "c2"), am).safety);
  EXPECT_TRUE(semantic(patterns::precedence("q", "p"), pq()).safety);
}

TEST(Patterns, FifoIsSafety) {
  auto a = lang::Alphabet::of_props({"q1", "q2", "p1", "p2"});
  EXPECT_TRUE(semantic(patterns::fifo("q1", "q2", "p1", "p2"), a).safety);
}

TEST(Patterns, GuaranteeAndBeyond) {
  auto a2 = lang::Alphabet::of_props({"t", "post"});
  EXPECT_TRUE(semantic(patterns::termination("t"), a2).guarantee);
  auto a3 = lang::Alphabet::of_props({"pre", "t", "post"});
  EXPECT_TRUE(semantic(patterns::total_correctness("pre", "t", "post"), a3).guarantee);
  auto c = semantic(patterns::exception("p", "q"), pq());
  EXPECT_TRUE(c.obligation);
  EXPECT_FALSE(c.safety);
  EXPECT_FALSE(c.guarantee);
  EXPECT_TRUE(semantic(patterns::accessibility("p", "q"), pq()).recurrence);
  EXPECT_TRUE(semantic(patterns::stabilization("p", "q"), pq()).persistence);
  EXPECT_FALSE(semantic(patterns::stabilization("p", "q"), pq()).recurrence);
}

TEST(NbaChecks, AgreeWithDeterministicPipeline) {
  auto a = pq();
  const char* corpus[] = {"G p", "F p", "G F p", "F G p", "G p | F q", "p U q",
                          "G(p -> F q)", "p W q"};
  for (const char* s : corpus) {
    Formula f = parse_formula(s);
    Classification sem = semantic(f, a);
    EXPECT_EQ(nba_is_safety(f, a), sem.safety) << s;
    EXPECT_EQ(nba_is_guarantee(f, a), sem.guarantee) << s;
    EXPECT_EQ(nba_is_liveness(f, a), sem.liveness) << s;
  }
}

}  // namespace
}  // namespace mph::ltl
