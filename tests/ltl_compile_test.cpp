// Cross-validation of the whole LTL pipeline: esat, the hierarchy-form
// compiler + rewriter, and the NBA tableau are each checked against the
// independent lasso evaluator on exhaustive small lassos and randomized
// formulas.
#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/ltl/esat.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/to_nba.hpp"
#include "src/omega/emptiness.hpp"
#include "src/support/rng.hpp"

namespace mph::ltl {
namespace {

lang::Alphabet pq() { return lang::Alphabet::of_props({"p", "q"}); }

void expect_compiles_correctly(const Formula& f, const lang::Alphabet& a) {
  omega::DetOmega m = compile(f, a);
  for (const omega::Lasso& l : omega::enumerate_lassos(a, 2, 2))
    ASSERT_EQ(m.accepts(l), evaluates(f, l, a))
        << f.to_string() << " @ " << l.to_string(a)
        << " (rewritten: " << to_hierarchy_form(f).to_string() << ")";
}

TEST(Esat, PaperExampleAStarB) {
  // §4: the finitary property a*b is esat(b ∧ ⊙̃□̃a) — here, over letters,
  // esat(b & Z H a).
  auto sigma = lang::Alphabet::plain({"a", "b"});
  lang::Dfa d = esat(parse_formula("b & Z H a"), sigma);
  EXPECT_TRUE(d.accepts_text("b"));
  EXPECT_TRUE(d.accepts_text("ab"));
  EXPECT_TRUE(d.accepts_text("aaab"));
  EXPECT_FALSE(d.accepts_text("a"));
  EXPECT_FALSE(d.accepts_text("ba"));
  EXPECT_FALSE(d.accepts_text("abb"));
  EXPECT_FALSE(d.accepts_text(""));
}

TEST(Esat, PropositionalKernels) {
  auto sigma = pq();
  // esat(O p): words containing a p somewhere.
  lang::Dfa d = esat(parse_formula("O p"), sigma);
  EXPECT_TRUE(d.accepts({1}));
  EXPECT_TRUE(d.accepts({0, 3, 0}));
  EXPECT_FALSE(d.accepts({0, 2}));
  // esat(first ∧ p) = length-1 words satisfying p.
  lang::Dfa e = esat(f_and(f_first(), f_atom("p")), sigma);
  EXPECT_TRUE(e.accepts({1}));
  EXPECT_TRUE(e.accepts({3}));
  EXPECT_FALSE(e.accepts({2}));
  EXPECT_FALSE(e.accepts({1, 1}));
}

TEST(Esat, SinceKernel) {
  auto sigma = pq();
  // esat(p S q): q happened, p ever since.
  lang::Dfa d = esat(parse_formula("p S q"), sigma);
  EXPECT_TRUE(d.accepts({2}));
  EXPECT_TRUE(d.accepts({0, 2, 1, 1}));
  EXPECT_FALSE(d.accepts({0, 2, 0, 1}));
  EXPECT_FALSE(d.accepts({1}));
}

TEST(Esat, RejectsFutureFormulas) {
  EXPECT_THROW(esat(parse_formula("F p"), pq()), std::invalid_argument);
}

TEST(Esat, MinimalityOnKernels) {
  // The truth-vector construction followed by minimization should give the
  // canonical automaton; O p needs exactly 3 states (pre, seen, start).
  auto sigma = pq();
  lang::Dfa d = esat(parse_formula("O p"), sigma);
  EXPECT_LE(d.state_count(), 3u);
}

TEST(HierarchyCompile, CanonicalForms) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G p"), a);
  expect_compiles_correctly(parse_formula("F p"), a);
  expect_compiles_correctly(parse_formula("G F p"), a);
  expect_compiles_correctly(parse_formula("F G p"), a);
  expect_compiles_correctly(parse_formula("p"), a);
  expect_compiles_correctly(parse_formula("O p"), a);  // bare past formula
}

TEST(HierarchyCompile, BooleanCombinations) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G p | F q"), a);
  expect_compiles_correctly(parse_formula("G F p & F G q"), a);
  expect_compiles_correctly(parse_formula("!(G F p)"), a);
  expect_compiles_correctly(parse_formula("F p -> F q"), a);
  expect_compiles_correctly(parse_formula("G F p -> G F q"), a);
  expect_compiles_correctly(parse_formula("G p <-> F q"), a);
}

TEST(HierarchyCompile, PastKernels) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G(q -> O p)"), a);
  expect_compiles_correctly(parse_formula("G F (p S q)"), a);
  expect_compiles_correctly(parse_formula("F G (q -> O p)"), a);
  expect_compiles_correctly(parse_formula("F(q & Z H p)"), a);
}

TEST(HierarchyCompile, RewriterResponse) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G(p -> F q)"), a);
  expect_compiles_correctly(parse_formula("G((p & !q) -> F q)"), a);
}

TEST(HierarchyCompile, RewriterConditionalForms) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G(p -> G q)"), a);
  expect_compiles_correctly(parse_formula("G(p -> X q)"), a);
  expect_compiles_correctly(parse_formula("G(p -> F G q)"), a);
  expect_compiles_correctly(parse_formula("G(p -> G F q)"), a);
  expect_compiles_correctly(parse_formula("p -> G q"), a);
  expect_compiles_correctly(parse_formula("p -> F q"), a);
  expect_compiles_correctly(parse_formula("p -> F G q"), a);
}

TEST(HierarchyCompile, RewriterNextForms) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("X p"), a);
  expect_compiles_correctly(parse_formula("X X p"), a);
  expect_compiles_correctly(parse_formula("X G p"), a);
  expect_compiles_correctly(parse_formula("X F p"), a);
  expect_compiles_correctly(parse_formula("X G F p"), a);
  expect_compiles_correctly(parse_formula("X F G p"), a);
  expect_compiles_correctly(parse_formula("X(p | G q)"), a);
}

TEST(HierarchyCompile, RewriterUntilRelease) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("p U q"), a);
  expect_compiles_correctly(parse_formula("p W q"), a);
  expect_compiles_correctly(parse_formula("p R q"), a);
  expect_compiles_correctly(parse_formula("(O p) U q"), a);
  expect_compiles_correctly(parse_formula("(p U q) | G p"), a);
}

TEST(HierarchyCompile, DistributionRules) {
  auto a = pq();
  expect_compiles_correctly(parse_formula("G(p & F q)"), a);
  expect_compiles_correctly(parse_formula("F(p | G q)"), a);
  expect_compiles_correctly(parse_formula("G(p & (q -> F p))"), a);
}

TEST(HierarchyCompile, UnsupportedThrows) {
  auto a = pq();
  // Nested untils over future operands are outside the fragment.
  EXPECT_THROW(compile(parse_formula("(F p) U (G q)"), a), std::invalid_argument);
}

TEST(HierarchyCompile, RandomFragmentFormulas) {
  // Random formulas built inside the fragment: boolean combinations of
  // hierarchy shapes over random past kernels.
  Rng rng(1234);
  auto a = pq();
  auto random_past = [&](auto&& self, int depth) -> Formula {
    if (depth == 0 || rng.chance(1, 3)) return rng.chance(1, 2) ? f_atom("p") : f_atom("q");
    switch (rng.below(7)) {
      case 0:
        return f_not(self(self, depth - 1));
      case 1:
        return f_and(self(self, depth - 1), self(self, depth - 1));
      case 2:
        return f_or(self(self, depth - 1), self(self, depth - 1));
      case 3:
        return f_prev(self(self, depth - 1));
      case 4:
        return f_once(self(self, depth - 1));
      case 5:
        return f_historically(self(self, depth - 1));
      default:
        return f_since(self(self, depth - 1), self(self, depth - 1));
    }
  };
  auto random_shape = [&](auto&& self, int depth) -> Formula {
    Formula kernel = random_past(random_past, 2);
    if (depth > 0 && rng.chance(1, 2)) {
      Formula l = self(self, depth - 1);
      Formula r = self(self, depth - 1);
      return rng.chance(1, 2) ? f_and(l, r) : f_or(l, r);
    }
    switch (rng.below(5)) {
      case 0:
        return f_always(kernel);
      case 1:
        return f_eventually(kernel);
      case 2:
        return f_always(f_eventually(kernel));
      case 3:
        return f_eventually(f_always(kernel));
      default:
        return kernel;
    }
  };
  for (int trial = 0; trial < 30; ++trial) {
    Formula f = random_shape(random_shape, 2);
    expect_compiles_correctly(f, a);
  }
}

TEST(ToNba, MatchesEvaluatorOnCorpus) {
  auto a = pq();
  const char* corpus[] = {
      "p", "!p", "X p", "F p", "G p", "G F p", "F G p", "p U q", "p R q",
      "p W q", "G(p -> F q)", "F p & F q", "G p | G q", "(p U q) U p",
      "G F p -> G F q", "X(p U q)",
  };
  for (const char* s : corpus) {
    Formula f = parse_formula(s);
    omega::Nba n = to_nba(f, a);
    for (const omega::Lasso& l : omega::enumerate_lassos(a, 2, 2))
      ASSERT_EQ(n.accepts(l), evaluates(f, l, a)) << s << " @ " << l.to_string(a);
  }
}

TEST(ToNba, RandomFutureFormulas) {
  Rng rng(4321);
  auto a = pq();
  auto random_future = [&](auto&& self, int depth) -> Formula {
    if (depth == 0 || rng.chance(1, 4)) return rng.chance(1, 2) ? f_atom("p") : f_atom("q");
    switch (rng.below(8)) {
      case 0:
        return f_not(self(self, depth - 1));
      case 1:
        return f_and(self(self, depth - 1), self(self, depth - 1));
      case 2:
        return f_or(self(self, depth - 1), self(self, depth - 1));
      case 3:
        return f_next(self(self, depth - 1));
      case 4:
        return f_eventually(self(self, depth - 1));
      case 5:
        return f_always(self(self, depth - 1));
      case 6:
        return f_until(self(self, depth - 1), self(self, depth - 1));
      default:
        return f_release(self(self, depth - 1), self(self, depth - 1));
    }
  };
  for (int trial = 0; trial < 25; ++trial) {
    Formula f = random_future(random_future, 2);
    omega::Nba n = to_nba(f, a);
    for (const omega::Lasso& l : omega::enumerate_lassos(a, 2, 2))
      ASSERT_EQ(n.accepts(l), evaluates(f, l, a))
          << f.to_string() << " @ " << l.to_string(a);
  }
}

TEST(ToNba, NnfPreservesSemantics) {
  Rng rng(99);
  auto a = pq();
  const char* corpus[] = {"!(p U q)", "!(G(p -> F q))", "!(p W q)", "!(p <-> q)", "!X!p"};
  for (const char* s : corpus) {
    Formula f = parse_formula(s);
    Formula g = to_nnf(f);
    for (const omega::Lasso& l : omega::enumerate_lassos(a, 2, 2))
      ASSERT_EQ(evaluates(f, l, a), evaluates(g, l, a)) << s << " vs " << g.to_string();
  }
  (void)rng;
}

}  // namespace
}  // namespace mph::ltl
