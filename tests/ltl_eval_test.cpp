#include <gtest/gtest.h>

#include "src/ltl/eval.hpp"

namespace mph::ltl {
namespace {

// Two propositions p, q; symbols are bitmasks: 0={}, 1={p}, 2={q}, 3={p,q}.
lang::Alphabet pq() { return lang::Alphabet::of_props({"p", "q"}); }

omega::Lasso mk(std::vector<lang::Symbol> prefix, std::vector<lang::Symbol> loop) {
  return omega::Lasso{std::move(prefix), std::move(loop)};
}

bool ev(const std::string& f, const omega::Lasso& l) {
  return evaluates(parse_formula(f), l, pq());
}

TEST(Eval, StateFormulaAtPositionZero) {
  EXPECT_TRUE(ev("p", mk({}, {1})));
  EXPECT_FALSE(ev("p", mk({}, {2})));
  EXPECT_TRUE(ev("p & !q", mk({1}, {3})));
  EXPECT_FALSE(ev("p & q", mk({1}, {3})));
}

TEST(Eval, NextShiftsOnePosition) {
  EXPECT_TRUE(ev("X p", mk({0, 1}, {0})));
  EXPECT_FALSE(ev("X p", mk({1, 0}, {0})));
  EXPECT_TRUE(ev("X X p", mk({0, 0}, {1})));
}

TEST(Eval, AlwaysAndEventually) {
  EXPECT_TRUE(ev("G p", mk({1}, {1, 3})));
  EXPECT_FALSE(ev("G p", mk({1}, {1, 2})));
  EXPECT_TRUE(ev("F q", mk({0, 0}, {0, 2})));
  EXPECT_FALSE(ev("F q", mk({0}, {1})));
  // Eventually in the prefix only.
  EXPECT_TRUE(ev("F q", mk({2}, {0})));
}

TEST(Eval, InfinitelyOftenVsEventuallyAlways) {
  EXPECT_TRUE(ev("G F p", mk({}, {1, 0})));
  EXPECT_FALSE(ev("G F p", mk({1, 1}, {0})));
  EXPECT_TRUE(ev("F G p", mk({0, 2}, {1})));
  EXPECT_FALSE(ev("F G p", mk({}, {1, 0})));
  // GFp but not FGp.
  EXPECT_TRUE(ev("G F p & !F G p", mk({}, {1, 0})));
}

TEST(Eval, UntilSemantics) {
  // p U q: q at position 2, p before.
  EXPECT_TRUE(ev("p U q", mk({1, 1, 2}, {0})));
  // q immediately: p irrelevant.
  EXPECT_TRUE(ev("p U q", mk({2}, {0})));
  // p fails before q arrives.
  EXPECT_FALSE(ev("p U q", mk({1, 0, 2}, {0})));
  // q never arrives: strong until fails, weak until holds if G p.
  EXPECT_FALSE(ev("p U q", mk({}, {1})));
  EXPECT_TRUE(ev("p W q", mk({}, {1})));
  EXPECT_FALSE(ev("p W q", mk({}, {0})));
}

TEST(Eval, ReleaseSemantics) {
  // p R q: q holds up to and including the first p (or forever).
  EXPECT_TRUE(ev("p R q", mk({}, {2})));
  EXPECT_TRUE(ev("p R q", mk({2, 3}, {0})));
  EXPECT_FALSE(ev("p R q", mk({2, 0}, {2})));
  // Duality with until.
  EXPECT_EQ(ev("!(p U q)", mk({1, 0}, {2})), ev("!p R !q", mk({1, 0}, {2})));
}

TEST(Eval, PastOperatorsViaFutureWrappers) {
  // F(q & O p): some q preceded (weakly) by some earlier-or-equal p.
  EXPECT_TRUE(ev("F(q & O p)", mk({1, 0, 2}, {0})));
  EXPECT_FALSE(ev("F(q & O p)", mk({2, 1}, {0})));
  // G(q -> O p): every q preceded by a p (precedence pattern).
  EXPECT_TRUE(ev("G(q -> O p)", mk({1}, {2})));
  EXPECT_FALSE(ev("G(q -> O p)", mk({2}, {1})));
  // first = Z false holds only at position 0: G(first -> p) ⇔ p at 0.
  EXPECT_TRUE(ev("G(Z false -> p)", mk({1}, {0})));
  EXPECT_FALSE(ev("G(Z false -> p)", mk({0}, {1})));
}

TEST(Eval, SinceAndHistorically) {
  // F(p S q): at some position, q happened and p held since then.
  EXPECT_TRUE(ev("F(p S q)", mk({2, 1, 1}, {0})));
  // After q, p breaks, then the since is dead (no new q).
  EXPECT_FALSE(ev("G(p S q)", mk({2, 1, 0}, {1})));
  // H p at position k means p on [0..k]: F(H p) at pos 0 ⇔ p at 0.
  EXPECT_TRUE(ev("F H p", mk({1}, {0})));
  EXPECT_FALSE(ev("F H p", mk({0}, {1})));
}

TEST(Eval, YPrevIsFalseAtOrigin) {
  EXPECT_FALSE(ev("Y true", mk({}, {1})));
  EXPECT_TRUE(ev("Z false", mk({}, {1})));  // `first` at position 0
  EXPECT_TRUE(ev("X Y p", mk({1}, {0})));
  EXPECT_FALSE(ev("X Y p", mk({0}, {1})));
}

TEST(Eval, StabilizationNeedsLongUnrolling) {
  // pending-request pattern truth depends on history deep into the loop:
  // G(p -> F q) on (p q)^ω is true; on p(p)^ω false; on p q (p)^ω false.
  EXPECT_TRUE(ev("G(p -> F q)", mk({}, {1, 2})));
  EXPECT_FALSE(ev("G(p -> F q)", mk({}, {1})));
  EXPECT_FALSE(ev("G(p -> F q)", mk({1, 2}, {1})));
  // Same property via the past kernel (response rewrite target).
  EXPECT_TRUE(ev("G F !(!q S (p & !q))", mk({}, {1, 2})));
  EXPECT_FALSE(ev("G F !(!q S (p & !q))", mk({}, {1})));
}

TEST(Eval, PastOverFutureRejected) {
  EXPECT_THROW(ev("O F p", mk({}, {1})), std::invalid_argument);
  EXPECT_THROW(ev("Y X p", mk({}, {1})), std::invalid_argument);
}

TEST(Eval, PlainAlphabetAtomsAreLetters) {
  auto sigma = lang::Alphabet::plain({"a", "b"});
  omega::Lasso l{lang::parse_word("ab", sigma), lang::parse_word("b", sigma)};
  EXPECT_TRUE(evaluates(parse_formula("a"), l, sigma));
  EXPECT_TRUE(evaluates(parse_formula("X G b"), l, sigma));
  EXPECT_FALSE(evaluates(parse_formula("G a"), l, sigma));
}

TEST(Eval, LoopSplitInvariance) {
  // Same infinite word, different lasso splits, same verdicts.
  for (const char* f : {"G F p", "F G !p", "p U q", "G(q -> O p)"}) {
    bool v1 = ev(f, mk({1}, {2, 1}));
    bool v2 = ev(f, mk({1, 2}, {1, 2}));
    bool v3 = ev(f, mk({1, 2, 1}, {2, 1, 2, 1}));
    EXPECT_EQ(v1, v2) << f;
    EXPECT_EQ(v1, v3) << f;
  }
}

TEST(Eval, HashConsedSharingPreservesVerdicts) {
  // The evaluator interns structurally identical subformulas (hash-consing
  // replaced the quadratic collect()/index_of scan). Duplicating a subterm
  // makes the interner share one slot for all copies; every verdict must be
  // exactly what the un-duplicated formula gives.
  const std::vector<omega::Lasso> lassos = {mk({}, {1}), mk({0, 2}, {3, 0}), mk({1, 1}, {2}),
                                            mk({}, {1, 0, 2})};
  const std::vector<std::string> bases = {"p U q",  "G F p",        "F G q",
                                          "p S q",  "Y p",          "G(p -> F q)",
                                          "O q",    "q -> H p"};
  for (const auto& b : bases) {
    for (const auto& l : lassos) {
      const bool v = ev(b, l);
      EXPECT_EQ(ev("(" + b + ") & (" + b + ")", l), v) << b;
      EXPECT_EQ(ev("(" + b + ") | (" + b + ")", l), v) << b;
      EXPECT_EQ(ev("!!(" + b + ")", l), v) << b;
      EXPECT_FALSE(ev("(" + b + ") & !(" + b + ")", l)) << b;
    }
  }
}

TEST(Eval, RepeatedDuplicationInternsOnce) {
  // 2^12 occurrences of "p U q" collapse to a handful of interned slots;
  // the evaluation tables stay proportional to *distinct* subformulas.
  std::string f = "p U q";
  for (int i = 0; i < 12; ++i) f = "(" + f + ") & (" + f + ")";
  EXPECT_TRUE(ev(f, mk({}, {2})));
  EXPECT_FALSE(ev(f, mk({}, {0})));
}

}  // namespace
}  // namespace mph::ltl
