#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/nba.hpp"
#include "src/omega/operators.hpp"

namespace mph::omega {
namespace {

using lang::compile_regex;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

// NBA for "finitely many a" (guesses the last a): needs nondeterminism.
Nba finitely_many_a() {
  Nba n(ab());
  State s0 = n.add_state();
  State s1 = n.add_state();
  n.add_edge(s0, 0, s0);
  n.add_edge(s0, 1, s0);
  n.add_edge(s0, 1, s1);
  n.add_edge(s1, 1, s1);
  n.set_accepting(s1);
  n.add_initial(s0);
  n.add_initial(s1);  // allow immediate commitment (pure b^ω)
  return n;
}

TEST(Nba, NondeterministicAcceptance) {
  Nba n = finitely_many_a();
  EXPECT_TRUE(n.accepts_text("(b)"));
  EXPECT_TRUE(n.accepts_text("aaab(b)"));
  EXPECT_TRUE(n.accepts_text("ababab(bb)"));
  EXPECT_FALSE(n.accepts_text("(a)"));
  EXPECT_FALSE(n.accepts_text("(ab)"));
  EXPECT_FALSE(n.accepts_text("bbbb(ba)"));
}

TEST(Nba, AgreesWithDeterministicCoBuchi) {
  // "Finitely many a" = P(Σ*b ∪ ...) — compare against op_p over words
  // ending in b... precisely: all but finitely many prefixes end in b.
  auto sigma = ab();
  DetOmega det = op_p(compile_regex("(a|b)*b", sigma));
  Nba n = finitely_many_a();
  for (const Lasso& l : enumerate_lassos(sigma, 3, 3))
    ASSERT_EQ(n.accepts(l), det.accepts(l)) << l.to_string(sigma);
}

TEST(Nba, EmptinessAndWitness) {
  Nba n = finitely_many_a();
  EXPECT_FALSE(is_empty(n));
  auto l = accepting_lasso(n);
  ASSERT_TRUE(l.has_value());
  EXPECT_TRUE(n.accepts(*l));
}

TEST(Nba, EmptyAutomaton) {
  Nba n(ab());
  State s0 = n.add_state();
  n.add_edge(s0, 0, s0);
  n.add_initial(s0);  // no accepting states
  EXPECT_TRUE(is_empty(n));
  EXPECT_FALSE(accepting_lasso(n).has_value());
  EXPECT_FALSE(n.accepts_text("(a)"));
}

TEST(Nba, AcceptingStateWithoutCycleIsEmpty) {
  Nba n(ab());
  State s0 = n.add_state();
  State s1 = n.add_state();
  n.add_edge(s0, 0, s1);  // s1 has no outgoing edges
  n.set_accepting(s1);
  n.add_initial(s0);
  EXPECT_TRUE(is_empty(n));
}

TEST(Nba, ToNbaFromDeterministicBuchi) {
  auto sigma = ab();
  DetOmega det = op_r(compile_regex("(a|b)*b", sigma));
  Nba n = to_nba(det);
  for (const Lasso& l : enumerate_lassos(sigma, 3, 3))
    ASSERT_EQ(n.accepts(l), det.accepts(l)) << l.to_string(sigma);
}

TEST(Nba, ToNbaRejectsNonBuchi) {
  auto sigma = ab();
  DetOmega det = op_p(compile_regex("(a|b)*b", sigma));
  EXPECT_THROW(to_nba(det), std::invalid_argument);
}

TEST(Nba, IntersectWithSafetyAutomaton) {
  auto sigma = ab();
  // "Infinitely many b" ∩ A(a⁺b*): must be a⁺b^ω.
  Nba inf_b = to_nba(op_r(compile_regex("(a|b)*b", sigma)));
  DetOmega safety = op_a(compile_regex("a+b*", sigma));
  Nba inter = intersect_with_cobuchi(inf_b, safety);
  EXPECT_TRUE(inter.accepts_text("a(b)"));
  EXPECT_TRUE(inter.accepts_text("aaab(b)"));
  EXPECT_FALSE(inter.accepts_text("(a)"));     // no b's
  EXPECT_FALSE(inter.accepts_text("b(b)"));    // violates safety
  EXPECT_FALSE(inter.accepts_text("ab(ab)"));  // leaves a⁺b* prefix set
  for (const Lasso& l : enumerate_lassos(sigma, 3, 3))
    ASSERT_EQ(inter.accepts(l), inf_b.accepts(l) && safety.accepts(l)) << l.to_string(sigma);
}

TEST(Nba, IntersectWithCoBuchiGeneral) {
  auto sigma = ab();
  // "Infinitely many b" ∩ P(Σ*b) = Σ*b^ω.
  Nba inf_b = to_nba(op_r(compile_regex("(a|b)*b", sigma)));
  DetOmega pers = op_p(compile_regex("(a|b)*b", sigma));
  Nba inter = intersect_with_cobuchi(inf_b, pers);
  for (const Lasso& l : enumerate_lassos(sigma, 3, 3))
    ASSERT_EQ(inter.accepts(l), inf_b.accepts(l) && pers.accepts(l)) << l.to_string(sigma);
}

TEST(Nba, PrefOfNba) {
  auto sigma = ab();
  Nba n = finitely_many_a();
  // Every finite word extends to a word with finitely many a's: Pref = Σ*.
  EXPECT_TRUE(lang::is_universal(pref(n)));
  // An NBA whose language is a·b^ω has Pref = ε + a·b*.
  Nba m(sigma);
  State s0 = m.add_state();
  State s1 = m.add_state();
  m.add_edge(s0, 0, s1);
  m.add_edge(s1, 1, s1);
  m.set_accepting(s1);
  m.add_initial(s0);
  lang::Dfa p = pref(m);
  EXPECT_TRUE(p.accepts_text(""));
  EXPECT_TRUE(p.accepts_text("a"));
  EXPECT_TRUE(p.accepts_text("abb"));
  EXPECT_FALSE(p.accepts_text("b"));
  EXPECT_FALSE(p.accepts_text("aba"));
}

}  // namespace
}  // namespace mph::omega
