// The §2 obligation normal-form theorem, executable: CNF/DNF extraction,
// term counts matching the Obl_n grading, and realization equivalence.
#include <gtest/gtest.h>

#include "src/core/chains.hpp"
#include "src/core/classify.hpp"
#include "src/core/normal_form.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"
#include "src/support/rng.hpp"

namespace mph::core {
namespace {

using lang::compile_regex;
using omega::DetOmega;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

/// ⋀_{i<n}(□pᵢ ∨ ◇qᵢ) product automaton (same construction as the bench).
DetOmega obligation_family(std::size_t n) {
  std::vector<std::string> props;
  for (std::size_t i = 0; i < n; ++i) {
    props.push_back("p" + std::to_string(i));
    props.push_back("q" + std::to_string(i));
  }
  auto sigma = lang::Alphabet::of_props(props);
  std::size_t total = 1;
  for (std::size_t i = 0; i < n; ++i) total *= 3;
  omega::Acceptance acc = omega::Acceptance::t();
  for (std::size_t i = 0; i < n; ++i)
    acc = omega::Acceptance::conj(std::move(acc),
                                  omega::Acceptance::fin(static_cast<omega::Mark>(i)));
  DetOmega m(sigma, total, 0, std::move(acc));
  for (omega::State q = 0; q < total; ++q) {
    std::vector<int> dig(n);
    omega::State rest = q;
    for (std::size_t i = 0; i < n; ++i) {
      dig[i] = static_cast<int>(rest % 3);
      rest /= 3;
    }
    for (std::size_t i = 0; i < n; ++i)
      if (dig[i] == 1) m.add_mark(q, static_cast<omega::Mark>(i));
    for (omega::Symbol s = 0; s < sigma.size(); ++s) {
      omega::State next = 0;
      std::size_t mult = 1;
      for (std::size_t i = 0; i < n; ++i) {
        const bool p = sigma.holds(s, 2 * i);
        const bool qq = sigma.holds(s, 2 * i + 1);
        int d = dig[i];
        if (d != 2) {
          if (qq)
            d = 2;
          else if (!p)
            d = 1;
        }
        next += static_cast<omega::State>(static_cast<std::size_t>(d) * mult);
        mult *= 3;
      }
      m.set_transition(q, s, next);
    }
  }
  return m;
}

TEST(NormalForm, SafetyRealizesWithAtMostTwoConjuncts) {
  // A(a⁺b*) has runs that die (rejecting wave) before ever entering an
  // accepting wave, which costs the construction its one extra conjunct.
  DetOmega m = omega::op_a(compile_regex("a+b*", ab()));
  auto nf = obligation_cnf(m);
  EXPECT_LE(nf.terms.size(), 2u);
  EXPECT_GE(nf.terms.size(), 1u);
  EXPECT_TRUE(omega::equivalent(nf.realize(ab()), m));
}

TEST(NormalForm, SafetyStartingAcceptingHasOneConjunct) {
  // A(a*): the run starts inside the accepting wave, so the CNF is minimal.
  DetOmega m = omega::op_a(compile_regex("a*", ab()));
  auto nf = obligation_cnf(m);
  EXPECT_EQ(nf.terms.size(), 1u);
  EXPECT_TRUE(omega::equivalent(nf.realize(ab()), m));
  // The E side of the single conjunct is empty for pure safety.
  EXPECT_TRUE(lang::is_empty_nonepsilon(nf.terms[0].psi));
}

TEST(NormalForm, GuaranteeHasOneConjunct) {
  DetOmega m = omega::op_e(compile_regex("(a|b)*b", ab()));
  auto nf = obligation_cnf(m);
  EXPECT_EQ(nf.terms.size(), 1u);
  EXPECT_TRUE(omega::equivalent(nf.realize(ab()), m));
}

TEST(NormalForm, SimpleObligationWitness) {
  // a*b^ω + Σ*cΣ^ω over {a,b,c} — the §2 obligation example.
  auto sigma = lang::Alphabet::plain({"a", "b", "c"});
  DetOmega m = union_of(intersection(omega::op_a(compile_regex("a*b*", sigma)),
                                     omega::op_e(compile_regex("a*b", sigma))),
                        omega::op_e(compile_regex("(a|b|c)*c", sigma)));
  auto nf = obligation_cnf(m);
  EXPECT_TRUE(omega::equivalent(nf.realize(sigma), m));
  EXPECT_LE(nf.terms.size(), 2u);
}

TEST(NormalForm, FamilyTermCountsMatchTheGrading) {
  for (std::size_t n = 1; n <= 3; ++n) {
    DetOmega m = obligation_family(n);
    auto nf = obligation_cnf(m);
    EXPECT_EQ(nf.terms.size(), n) << "n=" << n;
    EXPECT_EQ(obligation_chain(m), n);
    EXPECT_TRUE(omega::equivalent(nf.realize(m.alphabet()), m)) << "n=" << n;
  }
}

TEST(NormalForm, DnfDualizesCnf) {
  for (std::size_t n = 1; n <= 2; ++n) {
    DetOmega m = obligation_family(n);
    auto dnf = obligation_dnf(m);
    EXPECT_FALSE(dnf.conjunctive);
    EXPECT_TRUE(omega::equivalent(dnf.realize(m.alphabet()), m)) << "n=" << n;
  }
}

TEST(NormalForm, RandomBooleanCombinationsRealize) {
  Rng rng(654);
  auto sigma = ab();
  for (int trial = 0; trial < 12; ++trial) {
    lang::Dfa p1 = lang::random_dfa(rng, sigma, 3);
    lang::Dfa p2 = lang::random_dfa(rng, sigma, 3);
    // Arbitrary positive boolean combinations of safety and guarantee are
    // obligations.
    DetOmega m = union_of(intersection(omega::op_a(p1), omega::op_e(p2)),
                          omega::op_a(p2));
    auto nf = obligation_cnf(m);
    EXPECT_TRUE(omega::equivalent(nf.realize(sigma), m));
    auto dnf = obligation_dnf(m);
    EXPECT_TRUE(omega::equivalent(dnf.realize(sigma), m));
  }
}

TEST(NormalForm, TermCountIsMinimalOnTheFamily) {
  // The CNF size equals obligation_chain, which grades Obl_n — so the
  // extraction is optimal on the canonical family (no padding conjuncts).
  DetOmega m = obligation_family(2);
  EXPECT_EQ(obligation_cnf(m).terms.size(), obligation_chain(m));
}

TEST(NormalForm, RejectsNonObligation) {
  DetOmega rec = omega::op_r(compile_regex("(a*b)+", ab()));
  EXPECT_THROW(obligation_cnf(rec), std::invalid_argument);
  DetOmega pers = omega::op_p(compile_regex("(a|b)*a", ab()));
  EXPECT_THROW(obligation_cnf(pers), std::invalid_argument);
}

TEST(NormalForm, EmptyAndUniversal) {
  auto sigma = ab();
  DetOmega empty = omega::op_a(lang::empty_dfa(sigma));
  auto nf_e = obligation_cnf(empty);
  EXPECT_TRUE(omega::is_empty(nf_e.realize(sigma)));
  DetOmega all = omega::op_a(compile_regex("(a|b)+", sigma));
  auto nf_a = obligation_cnf(all);
  EXPECT_TRUE(omega::is_liveness(nf_a.realize(sigma)));
}

TEST(NormalForm, ConjunctsAreThemselvesSimpleObligations) {
  DetOmega m = obligation_family(2);
  auto nf = obligation_cnf(m);
  for (const auto& term : nf.terms) {
    DetOmega t = union_of(omega::op_a(term.phi), omega::op_e(term.psi));
    auto c = classify(t);
    EXPECT_TRUE(c.obligation);
    EXPECT_LE(obligation_chain(t), 1u);
  }
}

}  // namespace
}  // namespace mph::core
