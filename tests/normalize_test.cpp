// ΔΓ-normalization (src/ltl/normalize.hpp): language preservation on small
// lassos, class exactness against core::classify through the deterministic
// pipeline, idempotence, soundness of the syntactic classifier relative to
// the exact class, and budget-governed refusal.
#include <gtest/gtest.h>

#include "src/core/classify.hpp"
#include "src/fuzz/generators.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/normalize.hpp"
#include "src/ltl/semantic.hpp"
#include "src/ltl/syntactic.hpp"

namespace mph {
namespace {

using core::PropertyClass;

// The examples/ corpus plus the shapes the normalizer exists for: formulas
// that denote low classes but are not written in hierarchy normal form.
const char* kCorpus[] = {
    "G p", "G !p", "G(p | q)", "F q", "F(p & q)", "!(G p)", "G p | F q",
    "G p & F q", "F p -> F q", "G F p", "G(p -> F q)", "G F (p & q)",
    "F G p", "p -> F G q", "!(G F p)", "G F p | F G q", "G F p -> G F q",
    "G F p & F G q", "p U q", "p W q", "p R q", "X p", "X F p",
    "G(q -> O p)", "F(q & Z H p)", "G(p -> G q)", "G(p -> X q)",
    "G(p -> F G q)", "G(p -> G F q)", "true U q",
    // Non-normal-form shapes routed through each rule layer.
    "F(p & F q)", "F(p & G q)", "F(p U q)", "F(p R q)", "F(p W q)",
    "G F(p U q)", "G F(p R q)", "G F(p W q)", "F G(p U q)", "F G(p R q)",
    "F G(p W q)", "G F(p & F q)", "G F(p & G q)", "G F(X p)", "F G(X p)",
    "X X (p U q)", "p U (q U p)", "(p U q) U q", "q R (p R q)",
    "F(p & X q)", "F(p & X X q)", "G(p | F q)", "(G p) U q", "(F p) U q",
    "p U (G q)", "p U (F q)", "F(p & (q U p))", "F((O p) & G q)",
    "G F(p & (q U p))", "(p U q) | (q U p)", "(p U q) & (q U p)",
    "X(p U q)", "G(X p | q)", "F(X p & q)", "!(p U q)", "!(p W q)",
    "!F(p & G q)", "(p W q) & (q W p)", "G((O p) | F q)",
};

lang::Alphabet pq() { return lang::Alphabet::of_props({"p", "q"}); }

class NormalizeCorpus : public ::testing::TestWithParam<const char*> {};

// The one property everything else rests on: the normal form denotes the
// same language as the input, witnessed exhaustively on small lassos.
TEST_P(NormalizeCorpus, NormalFormPreservesLanguage) {
  ltl::Formula f = ltl::parse_formula(GetParam());
  auto r = ltl::normalize(f);
  ASSERT_TRUE(r.complete()) << "corpus formula left the envelope: "
                            << r.form.to_string();
  ASSERT_TRUE(ltl::is_hierarchy_form(r.form)) << r.form.to_string();
  auto alphabet = pq();
  auto m = ltl::compile_hierarchy_form(r.form, alphabet);
  ASSERT_TRUE(m.has_value()) << r.form.to_string();
  for (const omega::Lasso& l : omega::enumerate_lassos(alphabet, 3, 3))
    ASSERT_EQ(m->accepts(l), ltl::evaluates(f, l, alphabet))
        << "input " << f.to_string() << "\nnormal " << r.form.to_string()
        << "\nword " << l.to_string(alphabet);
}

// Exactness: the class computed from the normal form equals core::classify
// of the independently compiled automaton (the PR-1 rewrite pipeline).
TEST_P(NormalizeCorpus, ExactClassMatchesSemanticClassify) {
  ltl::Formula f = ltl::parse_formula(GetParam());
  auto exact = ltl::exact_classification(f);
  ASSERT_TRUE(exact.has_value());
  auto alphabet = pq();
  try {
    // PR-1's rewrite pipeline — a meaningfully different compilation route.
    auto reference = core::classify(ltl::compile(f, alphabet));
    EXPECT_EQ(exact->value.safety, reference.safety) << f.to_string();
    EXPECT_EQ(exact->value.guarantee, reference.guarantee) << f.to_string();
    EXPECT_EQ(exact->value.recurrence, reference.recurrence) << f.to_string();
    EXPECT_EQ(exact->value.persistence, reference.persistence) << f.to_string();
    EXPECT_EQ(exact->value.lowest(), reference.lowest()) << f.to_string();
  } catch (const std::invalid_argument&) {
    // Outside the old pipeline's fragment — the reason this PR exists. The
    // NBA-based semantic checks still referee the safety/guarantee bits.
    if (!f.has_past()) {
      EXPECT_EQ(exact->value.safety, ltl::nba_is_safety(f, alphabet)) << f.to_string();
      EXPECT_EQ(exact->value.guarantee, ltl::nba_is_guarantee(f, alphabet)) << f.to_string();
    }
  }
}

// Syntactic ⊇ exact: every class the syntactic analysis claims must contain
// the exact class (satellite: the NNF pre-pass + dual rules must stay sound).
TEST_P(NormalizeCorpus, SyntacticContainsExact) {
  ltl::Formula f = ltl::parse_formula(GetParam());
  auto exact = ltl::exact_classification(f);
  ASSERT_TRUE(exact.has_value());
  auto syn = ltl::syntactic_classification(f);
  for (auto cls : {PropertyClass::Safety, PropertyClass::Guarantee,
                   PropertyClass::Obligation, PropertyClass::Recurrence,
                   PropertyClass::Persistence}) {
    if (syn.is(cls))
      EXPECT_TRUE(exact->value.is(cls))
          << f.to_string() << " syntactic over-claimed " << core::to_string(cls);
  }
}

// normalize ∘ normalize = normalize: a normal form re-normalizes to itself.
TEST_P(NormalizeCorpus, Idempotent) {
  ltl::Formula f = ltl::parse_formula(GetParam());
  auto r1 = ltl::normalize(f);
  ASSERT_TRUE(r1.complete());
  auto r2 = ltl::normalize(r1.form);
  ASSERT_TRUE(r2.complete());
  EXPECT_TRUE(r2.form == r1.form)
      << "first  " << r1.form.to_string() << "\nsecond " << r2.form.to_string();
}

INSTANTIATE_TEST_SUITE_P(Corpus, NormalizeCorpus, ::testing::ValuesIn(kCorpus));

// ---------------------------------------------------------------------------
// Randomized exactness: seed-1 fuzz formulas through the same three checks.

class NormalizeFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizeFuzzSweep, RandomFormulasPreserveLanguageAndClass) {
  Rng rng(GetParam());
  const std::vector<std::string> atoms{"p", "q"};
  auto alphabet = pq();
  int normalized = 0;
  for (int i = 0; i < 50; ++i) {
    ltl::Formula f = fuzz::random_ltl(rng, atoms, 9, fuzz::LtlFlavor::FutureOnly);
    auto r = ltl::normalize(f);
    if (!r.complete()) continue;
    ++normalized;
    auto m = ltl::compile_hierarchy_form(r.form, alphabet);
    ASSERT_TRUE(m.has_value()) << r.form.to_string();
    for (const omega::Lasso& l : omega::enumerate_lassos(alphabet, 2, 2))
      ASSERT_EQ(m->accepts(l), ltl::evaluates(f, l, alphabet))
          << "input " << f.to_string() << "\nnormal " << r.form.to_string()
          << "\nword " << l.to_string(alphabet);
    // Safety/guarantee bits of the exact class agree with the NBA checks.
    auto sem = core::classify(*m);
    EXPECT_EQ(ltl::nba_is_safety(f, alphabet), sem.safety) << f.to_string();
    EXPECT_EQ(ltl::nba_is_guarantee(f, alphabet), sem.guarantee) << f.to_string();
    // Regression: syntactic ⊇ exact on random formulas too.
    auto syn = ltl::syntactic_classification(f);
    for (auto cls : {PropertyClass::Safety, PropertyClass::Guarantee,
                     PropertyClass::Obligation, PropertyClass::Recurrence,
                     PropertyClass::Persistence}) {
      if (syn.is(cls))
        EXPECT_TRUE(sem.is(cls))
            << f.to_string() << " syntactic over-claimed " << core::to_string(cls);
    }
  }
  // The envelope is meant to be broad: a healthy share of small random
  // formulas normalizes (the rest refuse soundly, never misclassify).
  EXPECT_GE(normalized, 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeFuzzSweep,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Budget governance and refusal semantics.

TEST(NormalizeBudget, ExhaustionReportsOutcomeNeverMisclassifies) {
  ltl::Formula f = ltl::parse_formula("F(p & (q U p)) & G F(p R q)");
  ltl::NormalizeOptions opt;
  opt.budget = Budget().with_state_cap(3);
  auto r = ltl::normalize(f, opt);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.outcome, Outcome::BudgetStates);
  EXPECT_TRUE(r.form == f);  // sound fallback: the input itself
  EXPECT_FALSE(ltl::exact_classification(f, opt).has_value());
}

TEST(NormalizeBudget, NodeCeilingReportsBudgetStates) {
  ltl::Formula f = ltl::parse_formula("F(p & (q U p)) & F(q & (p U q))");
  ltl::NormalizeOptions opt;
  opt.max_form_nodes = 4;
  auto r = ltl::normalize(f, opt);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.outcome, Outcome::BudgetStates);
}

TEST(NormalizeBudget, OutOfEnvelopeIsRefusedNotMisreported) {
  // U over two genuinely temporal arguments inside □◇-free uniform context:
  // outside the supported envelope — must come back normal == false with a
  // Complete outcome, and exact_classification must refuse.
  ltl::Formula f = ltl::parse_formula("G((X p) U (X X q))");
  auto r = ltl::normalize(f);
  if (!r.normal) {
    EXPECT_EQ(r.outcome, Outcome::Complete);
    EXPECT_FALSE(ltl::exact_classification(f).has_value());
  }
}

TEST(NormalizeBasics, PastFormulasAreAlreadyKernels) {
  ltl::Formula f = ltl::parse_formula("q & O(p & Y q)");
  auto r = ltl::normalize(f);
  EXPECT_TRUE(r.complete());
  EXPECT_TRUE(r.form == f);
  EXPECT_EQ(r.steps, 0u);
}

TEST(NormalizeBasics, HierarchyFormsPassStraightThrough) {
  for (const char* text : {"G p", "F p", "G F p", "F G p", "G p | F G q",
                           "G(O p) & F(q & O p)"}) {
    ltl::Formula f = ltl::parse_formula(text);
    EXPECT_TRUE(ltl::is_hierarchy_form(f)) << text;
    auto r = ltl::normalize(f);
    EXPECT_TRUE(r.complete()) << text;
  }
}

}  // namespace
}  // namespace mph
