// Shared helpers for ω-automata tests: language comparison both by decision
// procedure (product + emptiness) and by brute-force lasso enumeration, so
// the two mechanisms cross-check each other.
#pragma once

#include <gtest/gtest.h>

#include "src/omega/det_omega.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/lasso.hpp"

namespace mph::omega::testutil {

/// Asserts L(a) = L(b) via the decision procedure and via all lassos with
/// |prefix| ≤ 3 and |loop| ≤ 3.
inline void expect_same_language(const DetOmega& a, const DetOmega& b,
                                 const std::string& what) {
  EXPECT_TRUE(equivalent(a, b)) << what << ": decision procedure disagrees; witness: "
                                << [&] {
                                     auto w = difference_witness(a, b);
                                     return w ? w->to_string(a.alphabet()) : std::string("none");
                                   }();
  for (const Lasso& l : enumerate_lassos(a.alphabet(), 3, 3))
    ASSERT_EQ(a.accepts(l), b.accepts(l)) << what << " @ " << l.to_string(a.alphabet());
}

/// Asserts the automaton's language agrees with `oracle` on all small lassos.
template <typename Oracle>
void expect_language_is(const DetOmega& a, Oracle&& oracle, const std::string& what,
                        std::size_t max_prefix = 3, std::size_t max_loop = 3) {
  for (const Lasso& l : enumerate_lassos(a.alphabet(), max_prefix, max_loop))
    ASSERT_EQ(a.accepts(l), oracle(l)) << what << " @ " << l.to_string(a.alphabet());
}

}  // namespace mph::omega::testutil
