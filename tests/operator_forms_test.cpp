// Kernel extraction — the constructive converse of the §2 operators — round
// trips through A/E/R/P on canonical and random languages, and the
// simple-reactivity extraction agrees with the Wagner chain grading.
#include <gtest/gtest.h>

#include "src/core/chains.hpp"
#include "src/core/operator_forms.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/patterns.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"
#include "src/support/rng.hpp"

namespace mph::core {
namespace {

using lang::compile_regex;
using omega::DetOmega;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(OperatorForms, RoundTripsOnCanonicalWitnesses) {
  auto sigma = ab();
  DetOmega a = omega::op_a(compile_regex("a+b*", sigma));
  EXPECT_TRUE(omega::equivalent(omega::op_a(safety_form(a)), a));
  DetOmega e = omega::op_e(compile_regex("(a|b)*b", sigma));
  EXPECT_TRUE(omega::equivalent(omega::op_e(guarantee_form(e)), e));
  DetOmega r = omega::op_r(compile_regex("(a*b)+", sigma));
  EXPECT_TRUE(omega::equivalent(omega::op_r(recurrence_form(r)), r));
  DetOmega p = omega::op_p(compile_regex("(a|b)*a", sigma));
  EXPECT_TRUE(omega::equivalent(omega::op_p(persistence_form(p)), p));
}

TEST(OperatorForms, RandomKernelsRoundTrip) {
  Rng rng(777);
  auto sigma = ab();
  for (int trial = 0; trial < 12; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 4);
    EXPECT_TRUE(
        omega::equivalent(omega::op_a(safety_form(omega::op_a(phi))), omega::op_a(phi)));
    EXPECT_TRUE(
        omega::equivalent(omega::op_r(recurrence_form(omega::op_r(phi))), omega::op_r(phi)));
    EXPECT_TRUE(omega::equivalent(omega::op_p(persistence_form(omega::op_p(phi))),
                                  omega::op_p(phi)));
  }
}

TEST(OperatorForms, CrossClassExtraction) {
  // A safety language is also recurrence and persistence: all three kernels
  // must exist and round trip.
  auto sigma = ab();
  DetOmega a = omega::op_a(compile_regex("a+b*", sigma));
  EXPECT_TRUE(omega::equivalent(omega::op_r(recurrence_form(a)), a));
  EXPECT_TRUE(omega::equivalent(omega::op_p(persistence_form(a)), a));
  // ...but not a guarantee kernel.
  EXPECT_THROW(guarantee_form(a), std::invalid_argument);
}

TEST(OperatorForms, ThrowOutsideTheClass) {
  auto sigma = ab();
  DetOmega rec = omega::op_r(compile_regex("(a*b)+", sigma));
  EXPECT_THROW(safety_form(rec), std::invalid_argument);
  EXPECT_THROW(guarantee_form(rec), std::invalid_argument);
  EXPECT_THROW(persistence_form(rec), std::invalid_argument);
}

TEST(OperatorForms, SimpleReactivityCanonical) {
  // □◇p ∨ ◇□q via the union of operator automata.
  auto sigma = lang::Alphabet::plain({"a", "b", "c"});
  DetOmega m = union_of(omega::op_r(compile_regex("(a|b|c)*a", sigma)),
                        omega::op_p(compile_regex("(a|b|c)*b", sigma)));
  auto form = simple_reactivity_form(m);
  DetOmega rebuilt = union_of(omega::op_r(form.phi), omega::op_p(form.psi));
  EXPECT_TRUE(omega::equivalent(rebuilt, m));
}

TEST(OperatorForms, StrongFairnessForm) {
  // □◇en → □◇tk is simple reactivity; extract its R/P presentation.
  auto alphabet = lang::Alphabet::of_props({"en", "tk"});
  DetOmega m = ltl::compile(ltl::patterns::strong_fairness("en", "tk"), alphabet);
  auto form = simple_reactivity_form(m);
  EXPECT_TRUE(
      omega::equivalent(union_of(omega::op_r(form.phi), omega::op_p(form.psi)), m));
}

TEST(OperatorForms, LowerClassesAreSimpleReactivity) {
  // Recurrence and persistence (and everything below) have R∪P forms too.
  Rng rng(778);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    lang::Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m :
         {omega::op_a(phi), omega::op_e(phi), omega::op_r(phi), omega::op_p(phi)}) {
      auto form = simple_reactivity_form(m);
      EXPECT_TRUE(
          omega::equivalent(union_of(omega::op_r(form.phi), omega::op_p(form.psi)), m));
    }
  }
}

TEST(OperatorForms, ExtractionIsSoundOnRandomStreettAutomata) {
  // A successful extraction certifies simple reactivity (extraction is
  // verified by rebuilding); failures may be genuine non-members or
  // presentations needing a state split — but never false positives.
  Rng rng(779);
  auto sigma = ab();
  int succeeded = 0, failed = 0;
  for (int trial = 0; trial < 40; ++trial) {
    DetOmega m(sigma, 5, 0, omega::Acceptance::streett(2));
    for (omega::State q = 0; q < 5; ++q) {
      for (omega::Symbol s = 0; s < 2; ++s)
        m.set_transition(q, s, static_cast<omega::State>(rng.below(5)));
      for (omega::Mark b = 0; b < 4; ++b)
        if (rng.chance(1, 3)) m.add_mark(q, b);
    }
    bool extracted = true;
    try {
      auto form = simple_reactivity_form(m);
      EXPECT_TRUE(omega::equivalent(union_of(omega::op_r(form.phi), omega::op_p(form.psi)), m));
    } catch (const std::invalid_argument&) {
      extracted = false;
    }
    if (extracted) {
      EXPECT_TRUE(is_simple_reactivity(m)) << "trial " << trial;
      ++succeeded;
    } else {
      ++failed;
    }
    // Conversely, a Streett index above 1 must always fail the extraction.
    if (!is_simple_reactivity(m)) {
      EXPECT_FALSE(extracted) << "trial " << trial;
    }
  }
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(failed, 0);
}

TEST(OperatorForms, ChainTwoLanguageHasNoForm) {
  // ⋀ of two independent simple reactivity formulas has Streett index 2.
  auto alphabet = lang::Alphabet::of_props({"p0", "q0", "p1", "q1"});
  auto f = ltl::parse_formula("(G F p0 | F G q0) & (G F p1 | F G q1)");
  DetOmega m = ltl::compile(f, alphabet);
  EXPECT_THROW(simple_reactivity_form(m), std::invalid_argument);
}

}  // namespace
}  // namespace mph::core
