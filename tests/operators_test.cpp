// Tests for the §2 operators A/E/R/P and the §2 laws: duality, closure of
// each class under ∪/∩ (including the minex identity), the characterization
// claims, and the inclusion equalities between classes.
#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/finitary_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"
#include "tests/omega_test_util.hpp"

namespace mph::omega {
namespace {

using lang::Dfa;
using lang::compile_regex;
using testutil::expect_language_is;
using testutil::expect_same_language;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

// Oracle helpers: decide prefix membership of the unrolled lasso.
bool prefix_in(const Dfa& phi, const Lasso& l, std::size_t len) {
  lang::Word w(len);
  for (std::size_t i = 0; i < len; ++i) w[i] = l.at(i);
  return phi.accepts(w);
}

// Unrolling horizon after which lasso prefix-membership becomes periodic:
// |prefix| + |loop| * |phi states| covers a full period of the product.
std::size_t horizon(const Dfa& phi, const Lasso& l) {
  return l.prefix.size() + l.loop.size() * (phi.state_count() + 1);
}

TEST(Operators, APaperExample) {
  // A(a⁺b*) = a^ω + a⁺b^ω.
  DetOmega m = op_a(compile_regex("a+b*", ab()));
  EXPECT_TRUE(m.accepts_text("(a)"));
  EXPECT_TRUE(m.accepts_text("a(b)"));
  EXPECT_TRUE(m.accepts_text("aaab(b)"));
  EXPECT_FALSE(m.accepts_text("(b)"));
  EXPECT_FALSE(m.accepts_text("ab(a)"));
  EXPECT_FALSE(m.accepts_text("aba(b)"));
}

TEST(Operators, EPaperExample) {
  // E(a⁺b*) = a⁺b*·Σ^ω.
  DetOmega m = op_e(compile_regex("a+b*", ab()));
  EXPECT_TRUE(m.accepts_text("(a)"));
  EXPECT_TRUE(m.accepts_text("a(b)"));
  EXPECT_TRUE(m.accepts_text("ab(ab)"));
  EXPECT_FALSE(m.accepts_text("(b)"));
  EXPECT_TRUE(m.accepts_text("ba(a)") == false);  // never has an a⁺b* prefix
}

TEST(Operators, RPaperExample) {
  // R(Σ*b) = (Σ*b)^ω = infinitely many b's.
  DetOmega m = op_r(compile_regex("(a|b)*b", ab()));
  EXPECT_TRUE(m.accepts_text("(b)"));
  EXPECT_TRUE(m.accepts_text("(ab)"));
  EXPECT_TRUE(m.accepts_text("aaa(ba)"));
  EXPECT_FALSE(m.accepts_text("(a)"));
  EXPECT_FALSE(m.accepts_text("bbb(a)"));
}

TEST(Operators, PPaperExample) {
  // P(Σ*b) = Σ*b^ω.
  DetOmega m = op_p(compile_regex("(a|b)*b", ab()));
  EXPECT_TRUE(m.accepts_text("(b)"));
  EXPECT_TRUE(m.accepts_text("aaba(b)"));
  EXPECT_FALSE(m.accepts_text("(ab)"));
  EXPECT_FALSE(m.accepts_text("(a)"));
}

TEST(Operators, DefinitionsAgainstOraclesRandomized) {
  Rng rng(2024);
  auto sigma = ab();
  for (int trial = 0; trial < 10; ++trial) {
    Dfa phi = lang::random_dfa(rng, sigma, 3);
    DetOmega a = op_a(phi), e = op_e(phi), r = op_r(phi), p = op_p(phi);
    for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) {
      const std::size_t h = horizon(phi, l);
      bool all = true, some = false;
      for (std::size_t len = 1; len <= h; ++len) {
        bool in = prefix_in(phi, l, len);
        all = all && in;
        some = some || in;
      }
      // Recurrence/persistence decided on the periodic tail: positions in
      // (|prefix|+k·|loop|·cycle) — sample one full period after stabilizing.
      bool inf_many = false, almost_all = true;
      for (std::size_t len = h + 1; len <= h + l.loop.size() * (phi.state_count() + 1); ++len) {
        bool in = prefix_in(phi, l, len);
        inf_many = inf_many || in;
        almost_all = almost_all && in;
      }
      ASSERT_EQ(a.accepts(l), all) << "A @ " << l.to_string(sigma);
      ASSERT_EQ(e.accepts(l), some) << "E @ " << l.to_string(sigma);
      ASSERT_EQ(r.accepts(l), inf_many) << "R @ " << l.to_string(sigma);
      ASSERT_EQ(p.accepts(l), almost_all) << "P @ " << l.to_string(sigma);
    }
  }
}

TEST(Operators, DualityAEandRP) {
  // complement(A(Φ)) = E(Φ̄) and complement(R(Φ)) = P(Φ̄) (§2).
  Rng rng(7);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa phi = lang::random_dfa(rng, sigma, 3);
    Dfa bar = lang::complement_nonepsilon(phi);
    expect_same_language(complement(op_a(phi)), op_e(bar), "¬A(Φ) = E(Φ̄)");
    expect_same_language(complement(op_e(phi)), op_a(bar), "¬E(Φ) = A(Φ̄)");
    expect_same_language(complement(op_r(phi)), op_p(bar), "¬R(Φ) = P(Φ̄)");
    expect_same_language(complement(op_p(phi)), op_r(bar), "¬P(Φ) = R(Φ̄)");
  }
}

TEST(Operators, GuaranteeClosureLaws) {
  // E(Φ1) ∪ E(Φ2) = E(Φ1 ∪ Φ2); E(Φ1) ∩ E(Φ2) = E(E_f(Φ1) ∩ E_f(Φ2)).
  Rng rng(17);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa p1 = lang::random_dfa(rng, sigma, 3);
    Dfa p2 = lang::random_dfa(rng, sigma, 3);
    expect_same_language(union_of(op_e(p1), op_e(p2)), op_e(lang::union_of(p1, p2)),
                         "E∪E = E(∪)");
    expect_same_language(intersection(op_e(p1), op_e(p2)),
                         op_e(lang::intersection(lang::e_f(p1), lang::e_f(p2))),
                         "E∩E = E(E_f∩E_f)");
  }
}

TEST(Operators, SafetyClosureLaws) {
  // A(Φ1) ∩ A(Φ2) = A(Φ1 ∩ Φ2); A(Φ1) ∪ A(Φ2) = A(A_f(Φ1) ∪ A_f(Φ2)).
  Rng rng(18);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa p1 = lang::random_dfa(rng, sigma, 3);
    Dfa p2 = lang::random_dfa(rng, sigma, 3);
    expect_same_language(intersection(op_a(p1), op_a(p2)), op_a(lang::intersection(p1, p2)),
                         "A∩A = A(∩)");
    expect_same_language(union_of(op_a(p1), op_a(p2)),
                         op_a(lang::union_of(lang::a_f(p1), lang::a_f(p2))),
                         "A∪A = A(A_f∪A_f)");
  }
}

TEST(Operators, RecurrenceClosureLawsIncludingMinex) {
  // R(Φ1) ∪ R(Φ2) = R(Φ1 ∪ Φ2); R(Φ1) ∩ R(Φ2) = R(minex(Φ1, Φ2)).
  Rng rng(19);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa p1 = lang::random_dfa(rng, sigma, 3);
    Dfa p2 = lang::random_dfa(rng, sigma, 3);
    expect_same_language(union_of(op_r(p1), op_r(p2)), op_r(lang::union_of(p1, p2)),
                         "R∪R = R(∪)");
    expect_same_language(intersection(op_r(p1), op_r(p2)), op_r(lang::minex(p1, p2)),
                         "R∩R = R(minex)");
  }
}

TEST(Operators, PersistenceClosureLaws) {
  // P(Φ1) ∩ P(Φ2) = P(Φ1 ∩ Φ2);
  // P(Φ1) ∪ P(Φ2) = P(complement(minex(Φ̄1, Φ̄2))) — note the paper prints
  // the minex arguments uncomplemented (erratum E3, see EXPERIMENTS.md);
  // duality with the recurrence law forces the form below.
  Rng rng(20);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa p1 = lang::random_dfa(rng, sigma, 3);
    Dfa p2 = lang::random_dfa(rng, sigma, 3);
    expect_same_language(intersection(op_p(p1), op_p(p2)), op_p(lang::intersection(p1, p2)),
                         "P∩P = P(∩)");
    Dfa m = lang::minex(lang::complement_nonepsilon(p1), lang::complement_nonepsilon(p2));
    expect_same_language(union_of(op_p(p1), op_p(p2)), op_p(lang::complement_nonepsilon(m)),
                         "P∪P = P(~minex(~Φ1,~Φ2))");
  }
}

TEST(Operators, InclusionEqualities) {
  // A(Φ) = R(A_f(Φ)) = P(A_f(Φ)); E(Φ) = R(E_f(Φ)) = P(E_f(Φ)) (§2).
  Rng rng(21);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa phi = lang::random_dfa(rng, sigma, 3);
    expect_same_language(op_a(phi), op_r(lang::a_f(phi)), "A = R(A_f)");
    expect_same_language(op_a(phi), op_p(lang::a_f(phi)), "A = P(A_f)");
    expect_same_language(op_e(phi), op_r(lang::e_f(phi)), "E = R(E_f)");
    expect_same_language(op_e(phi), op_p(lang::e_f(phi)), "E = P(E_f)");
  }
}

TEST(Operators, SafetyCharacterizationClaim) {
  // Π safety ⇒ Π = A(Pref(Π)); and (a*b)^ω ≠ its safety closure.
  auto sigma = ab();
  DetOmega safety = op_a(compile_regex("a+b*", sigma));
  expect_same_language(safety, safety_closure(safety), "safety = its closure");
  DetOmega rec = op_r(compile_regex("(a*b)+", sigma));  // (a*b)^ω
  EXPECT_FALSE(equivalent(rec, safety_closure(rec)));
  // Its closure is all of Σ^ω (Pref = (a+b)*).
  DetOmega closure = safety_closure(rec);
  for (const Lasso& l : enumerate_lassos(sigma, 2, 2)) EXPECT_TRUE(closure.accepts(l));
}

TEST(Operators, SafetyClosureContainsLanguage) {
  Rng rng(29);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m : {op_e(phi), op_r(phi), op_p(phi)})
      EXPECT_TRUE(contains(safety_closure(m), m));
  }
}

TEST(Operators, PrefComputesFinitePrefixes) {
  auto sigma = ab();
  // Pref((a*b)^ω) = (a+b)* (§2: every finite word extends to one with ∞ b's).
  DetOmega rec = op_r(compile_regex("(a*b)+", sigma));
  EXPECT_TRUE(lang::is_universal(pref(rec)));
  // Pref(a^ω + a⁺b^ω) = a⁺b* (+ ε).
  DetOmega saf = op_a(compile_regex("a+b*", sigma));
  lang::Dfa p = pref(saf);
  EXPECT_TRUE(p.accepts_text("a"));
  EXPECT_TRUE(p.accepts_text("aab"));
  EXPECT_TRUE(p.accepts_text("abb"));
  EXPECT_FALSE(p.accepts_text("b"));
  EXPECT_FALSE(p.accepts_text("aba"));
  EXPECT_TRUE(p.accepts_text(""));  // ε since the language is non-empty
}

TEST(Operators, LivenessExamples) {
  auto sigma = ab();
  // ◇b = Σ*·b·Σ^ω is live; a^ω is not; (a*b)^ω is live.
  EXPECT_TRUE(is_liveness(op_e(compile_regex("(a|b)*b", sigma))));
  EXPECT_FALSE(is_liveness(op_a(compile_regex("a+", sigma))));
  EXPECT_TRUE(is_liveness(op_r(compile_regex("(a*b)+", sigma))));
  // □a is not live; Σ^ω is (trivially).
  EXPECT_FALSE(is_liveness(op_a(compile_regex("a+b*", sigma))));
  EXPECT_TRUE(is_liveness(op_a(compile_regex("(a|b)+", sigma))));
}

TEST(Operators, LivenessExtensionIsLiveAndDecomposes) {
  // Π = A(Pref(Π)) ∩ 𝓛(Π) for arbitrary Π (§2 decomposition claim).
  Rng rng(33);
  auto sigma = ab();
  for (int trial = 0; trial < 8; ++trial) {
    Dfa phi = lang::random_dfa(rng, sigma, 3);
    for (const DetOmega& m : {op_e(phi), op_r(phi), op_p(phi), op_a(phi)}) {
      if (is_empty(m)) continue;  // decomposition of ∅ is degenerate
      DetOmega ext = liveness_extension(m);
      EXPECT_TRUE(is_liveness(ext));
      expect_same_language(intersection(safety_closure(m), ext), m, "Π = cl(Π) ∩ 𝓛(Π)");
    }
  }
}

TEST(Operators, StreettPairsInstallMarks) {
  auto sigma = ab();
  // Two-state automaton: state 0 on 'a', state 1 on 'b'.
  DetOmega m(sigma, 2, 0, Acceptance::t());
  m.set_transition(0, 0, 0);
  m.set_transition(0, 1, 1);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 1);
  // Pair: R = {1}, P = {} — "visit state 1 infinitely often".
  apply_streett_pairs(m, {{{1}, {}}});
  EXPECT_TRUE(m.accepts_text("(ab)"));
  EXPECT_TRUE(m.accepts_text("(b)"));
  EXPECT_FALSE(m.accepts_text("(a)"));
  EXPECT_FALSE(m.accepts_text("b(a)"));
  // Pair: R = {}, P = {0} — "eventually stay in state 0".
  apply_streett_pairs(m, {{{}, {0}}});
  EXPECT_TRUE(m.accepts_text("(a)"));
  EXPECT_TRUE(m.accepts_text("bbb(a)"));
  EXPECT_FALSE(m.accepts_text("(ab)"));
}

}  // namespace
}  // namespace mph::omega
