// Probing the §5.1 procedures as literally printed (Proposition 5.2):
// sound for one Streett pair, unsound for two — erratum E6.
#include <gtest/gtest.h>

#include "src/core/classify.hpp"
#include "src/core/paper_checks.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/support/rng.hpp"

namespace mph::core {
namespace {

using omega::DetOmega;
using omega::StreettPair;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(PaperChecks, SinglePairAgreesWithSemanticsOnRandomAutomata) {
  // For k = 1 the literal checks are sufficient: whenever the structural
  // test passes, the language is semantically in the class.
  Rng rng(1905);
  auto sigma = ab();
  int structural_hits = 0;
  for (int trial = 0; trial < 200; ++trial) {
    DetOmega m(sigma, 4, 0, omega::Acceptance::t());
    for (omega::State q = 0; q < 4; ++q)
      for (omega::Symbol s = 0; s < 2; ++s)
        m.set_transition(q, s, static_cast<omega::State>(rng.below(4)));
    StreettPair pair;
    for (omega::State q = 0; q < 4; ++q) {
      if (rng.chance(1, 3)) pair.r.push_back(q);
      if (rng.chance(1, 3)) pair.p.push_back(q);
    }
    omega::apply_streett_pairs(m, {pair});
    if (paper::literal_safety_check(m, {pair})) {
      ++structural_hits;
      EXPECT_TRUE(is_safety(m)) << "k=1 literal safety check over-approximated";
    }
    if (paper::literal_guarantee_check(m, {pair})) {
      EXPECT_TRUE(is_guarantee(m)) << "k=1 literal guarantee check over-approximated";
    }
  }
  EXPECT_GT(structural_hits, 0);  // the sweep actually exercised the check
}

TEST(PaperChecks, TwoPairCounterexampleErratumE6) {
  // Two states q0 ↔ q1 (complete, both letters move): the only infinite
  // behaviours end up visiting both states forever or one forever.
  //   pair 1: R₁ = {0}, P₁ = ∅      pair 2: R₂ = {1}, P₂ = ∅
  // G = (R₁∪P₁) ∩ (R₂∪P₂) = ∅, so B = Q and B̂∩G = ∅: the literal check
  // declares *safety*. But the loop {0,1} satisfies both pairs through
  // different states, so the language is "visit 0 and 1 infinitely often" —
  // which is not closed (limit of words committing to 0 forever).
  auto sigma = ab();
  DetOmega m(sigma, 2, 0, omega::Acceptance::t());
  m.set_transition(0, 0, 1);
  m.set_transition(0, 1, 0);
  m.set_transition(1, 0, 0);
  m.set_transition(1, 1, 1);
  std::vector<StreettPair> pairs = {{{0}, {}}, {{1}, {}}};
  omega::apply_streett_pairs(m, pairs);
  // Sanity: the language is "both states visited infinitely often".
  EXPECT_TRUE(m.accepts_text("(a)"));   // a alternates 0,1,0,1,...
  EXPECT_FALSE(m.accepts_text("(b)"));  // b keeps the current state
  EXPECT_FALSE(m.accepts_text("a(b)"));
  // The literal §5.1 check claims safety...
  EXPECT_TRUE(paper::literal_safety_check(m, pairs));
  // ...but the language is not a safety property (nor guarantee).
  EXPECT_FALSE(is_safety(m));
  EXPECT_FALSE(is_guarantee(m));
  // It is in fact a recurrence property (generalized Büchi).
  EXPECT_TRUE(is_recurrence(m));
}

TEST(PaperChecks, SinglePairCanonicalShapes) {
  // The operator-built automata carry the expected structural verdicts.
  auto sigma = ab();
  // op_a produces the safety shape: dead sink = B, live = G.
  DetOmega a = omega::op_a(lang::compile_regex("a+b*", sigma));
  // Recover the pair from the co-Büchi mark: P = unmarked states.
  StreettPair pair_a;
  for (omega::State q = 0; q < a.state_count(); ++q)
    if (a.marks(q) == 0) pair_a.p.push_back(q);
  EXPECT_TRUE(paper::literal_safety_check(a, {pair_a}));
  EXPECT_FALSE(paper::literal_guarantee_check(a, {pair_a}));
  // op_e produces the guarantee shape.
  DetOmega e = omega::op_e(lang::compile_regex("(a|b)*b", sigma));
  StreettPair pair_e;
  for (omega::State q = 0; q < e.state_count(); ++q)
    if (e.marks(q) != 0) pair_e.r.push_back(q);
  EXPECT_TRUE(paper::literal_guarantee_check(e, {pair_e}));
  EXPECT_FALSE(paper::literal_safety_check(e, {pair_e}));
}

TEST(PaperChecks, InputValidation) {
  auto sigma = ab();
  DetOmega m(sigma, 2, 0, omega::Acceptance::t());
  EXPECT_THROW(paper::literal_safety_check(m, {}), std::invalid_argument);
  EXPECT_THROW(paper::literal_safety_check(m, {StreettPair{{7}, {}}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mph::core
