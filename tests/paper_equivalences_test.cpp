// The §4 temporal equivalences, checked semantically: each claimed
// equivalence must agree on every small lasso over its propositions. This
// reproduces the paper's equational reasoning (closure of the specifiable
// classes, the responsiveness kernels, inclusion of the lower classes) and
// pins down erratum E7 in the conditional-guarantee kernel.
#include <gtest/gtest.h>

#include "src/ltl/eval.hpp"

namespace mph::ltl {
namespace {

lang::Alphabet pq() { return lang::Alphabet::of_props({"p", "q"}); }

void expect_equivalent(const std::string& lhs, const std::string& rhs) {
  Formula f = parse_formula(lhs);
  Formula g = parse_formula(rhs);
  auto a = pq();
  for (const omega::Lasso& l : omega::enumerate_lassos(a, 3, 3))
    ASSERT_EQ(evaluates(f, l, a), evaluates(g, l, a))
        << lhs << "  ~  " << rhs << "  @  " << l.to_string(a);
}

void expect_not_equivalent(const std::string& lhs, const std::string& rhs) {
  Formula f = parse_formula(lhs);
  Formula g = parse_formula(rhs);
  auto a = pq();
  for (const omega::Lasso& l : omega::enumerate_lassos(a, 3, 3))
    if (evaluates(f, l, a) != evaluates(g, l, a)) return;  // found a separator
  FAIL() << lhs << " and " << rhs << " agree on all small lassos";
}

TEST(PaperEquivalences, SafetyClosureUnderConjunction) {
  // (□p ∧ □q) ∼ □(p ∧ q).
  expect_equivalent("G p & G q", "G(p & q)");
}

TEST(PaperEquivalences, SafetyClosureUnderDisjunction) {
  // (□p ∨ □q) ∼ □(□̃p ∨ □̃q) — past boxes inside.
  expect_equivalent("G p | G q", "G(H p | H q)");
}

TEST(PaperEquivalences, GuaranteeClosureUnderConjunction) {
  // (◇p ∧ ◇q) ∼ ◇(◇̃p ∧ ◇̃q).
  expect_equivalent("F p & F q", "F(O p & O q)");
}

TEST(PaperEquivalences, ResponseKernel) {
  // □(p → ◇q) ∼ □◇((¬p) B q): "no pending request" recurs.
  expect_equivalent("G(p -> F q)", "G F ((!p) B q)");
  // ...and equals the library's own kernel.
  expect_equivalent("G(p -> F q)", "G F !((!q) S (p & !q))");
}

TEST(PaperEquivalences, RecurrenceIntersectionKernel) {
  // □◇p ∧ □◇q ∼ □◇(q ∧ ⊙((¬q) S p)) — the minex kernel of §4.
  expect_equivalent("G F p & G F q", "G F (q & Y((!q) S p))");
}

TEST(PaperEquivalences, PersistenceUnionKernel) {
  // (◇□p ∨ ◇□q) ∼ ◇□(q ∨ ⊙(p S (p ∧ ¬q))) (§4).
  expect_equivalent("F G p | F G q", "F G (q | Y(p S (p & !q)))");
}

TEST(PaperEquivalences, LowerClassInclusionKernels) {
  // □p ∼ □◇(□̃p) and ◇p ∼ □◇(◇̃p): safety/guarantee inside recurrence.
  expect_equivalent("G p", "G F H p");
  expect_equivalent("F p", "G F O p");
  // And inside persistence.
  expect_equivalent("G p", "F G H p");
  expect_equivalent("F p", "F G O p");
}

TEST(PaperEquivalences, ConditionalSafety) {
  // (p → □q) ∼ □(◇̃(p ∧ first) → q).
  expect_equivalent("p -> G q", "G(O(p & Z false) -> q)");
}

TEST(PaperEquivalences, ConditionalPersistence) {
  // □(p → ◇□q) ∼ ◇□(◇̃p → q) (§4).
  expect_equivalent("G(p -> F G q)", "F G (O p -> q)");
}

TEST(PaperEquivalences, DualityOfRecurrenceAndPersistence) {
  expect_equivalent("!(G F p)", "F G !p");
  expect_equivalent("!(F G p)", "G F !p");
}

TEST(PaperEquivalences, ConditionalGuaranteeErratumE7) {
  // §4 claims (p → ◇q) ∼ ◇(first ∧ p → q). Under either reading of the
  // scope, the right side is wrong:
  //  - ◇((first ∧ p) → q) is a tautology (any position ≥ 1 falsifies
  //    `first`), while p → ◇q is not;
  expect_not_equivalent("p -> F q", "F((Z false & p) -> q)");
  expect_equivalent("F((Z false & p) -> q)", "true");
  //  - ◇(first ∧ (p → q)) forces q at position 0 whenever p holds there,
  //    which is stronger than p → ◇q.
  expect_not_equivalent("p -> F q", "F(Z false & (p -> q))");
  // A correct conditional-guarantee kernel:
  expect_equivalent("p -> F q", "F((q & O(Z false & p)) | (Z false & !p))");
}

TEST(PaperEquivalences, ObligationResponseKernel) {
  // §4's exception pattern: ◇p → ◇(q ∧ ◇̃p): the first occurrence of p is
  // (weakly) followed by a q.
  expect_equivalent("F p -> F(q & O p)", "G(p -> F q) | (F p & F(q & O p)) | G !p");
}

TEST(PaperEquivalences, WeakUntilDecompositions) {
  expect_equivalent("p W q", "G p | (p U q)");
  expect_equivalent("p W q", "q R (p | q)");
  expect_equivalent("!(p U q)", "(!p) R (!q)");
}

}  // namespace
}  // namespace mph::ltl
