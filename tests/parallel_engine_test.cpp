// Multicore emptiness (docs/PARALLEL.md): the parallel work-stealing
// exploration, the CNDFS nested DFS, and the parallel safety-prefix scan
// must be indistinguishable from the sequential engines — identical state
// graphs, identical verdicts across thread counts, genuine counterexamples,
// and identical budget-exhausted diagnostics.
#include <gtest/gtest.h>

#include <numeric>

#include "src/analysis/diagnostics.hpp"
#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/eval.hpp"

namespace mph::fts {
namespace {

using programs::Program;

void expect_graphs_identical(const StateGraph& a, const StateGraph& b) {
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t n = 0; n < a.nodes.size(); ++n) {
    EXPECT_EQ(a.nodes[n].valuation, b.nodes[n].valuation) << "node " << n;
    EXPECT_EQ(a.nodes[n].last_taken, b.nodes[n].last_taken) << "node " << n;
    EXPECT_EQ(a.edges[n], b.edges[n]) << "node " << n;
    EXPECT_EQ(a.enabled[n], b.enabled[n]) << "node " << n;
  }
  EXPECT_EQ(a.stutters, b.stutters);
}

TEST(ParallelExplore, GraphIdenticalToSequential) {
  for (auto make : {+[] { return programs::dining_philosophers(4); },
                    +[] { return programs::ring_leader(5); },
                    +[] { return programs::peterson(); }}) {
    const Program prog = make();
    ExploreResult seq = explore(prog.system, Budget());
    ASSERT_TRUE(is_complete(seq.outcome));
    for (unsigned threads : {2u, 4u}) {
      ExploreResult par = explore(prog.system, Budget(), threads);
      ASSERT_TRUE(is_complete(par.outcome));
      EXPECT_EQ(par.stats.threads_used, threads);
      ASSERT_EQ(par.stats.worker_nodes.size(), threads);
      const std::size_t expanded = std::accumulate(par.stats.worker_nodes.begin(),
                                                   par.stats.worker_nodes.end(),
                                                   std::size_t{0});
      EXPECT_EQ(expanded, par.graph.nodes.size());
      expect_graphs_identical(seq.graph, par.graph);
    }
  }
}

TEST(ParallelExplore, SingleThreadTakesSequentialPath) {
  const Program prog = programs::dining_philosophers(3);
  ExploreResult one = explore(prog.system, Budget(), 1);
  EXPECT_EQ(one.stats.threads_used, 1u);
  EXPECT_TRUE(one.stats.worker_nodes.empty());
  expect_graphs_identical(explore(prog.system, Budget()).graph, one.graph);
}

TEST(ParallelExplore, StateCapParityWithSequential) {
  const Program prog = programs::dining_philosophers(4);
  const std::size_t cap = 40;
  ExploreResult seq = explore(prog.system, Budget().with_state_cap(cap));
  ASSERT_EQ(seq.outcome, Outcome::BudgetStates);
  for (unsigned threads : {2u, 4u}) {
    ExploreResult par = explore(prog.system, Budget().with_state_cap(cap), threads);
    EXPECT_EQ(par.outcome, Outcome::BudgetStates);
    // Both stop at exactly the cap's node count — the budget contract is
    // thread-count independent even though the partial frontiers differ.
    EXPECT_EQ(par.graph.nodes.size(), seq.graph.nodes.size());
    EXPECT_EQ(par.graph.nodes.size(), cap);
    // Every discovered node carries its valuation (edge rows may be empty).
    for (const auto& node : par.graph.nodes)
      EXPECT_EQ(node.valuation.size(), prog.system.var_count());
  }
}

struct Case {
  const char* model;
  const char* spec;
  bool class_dispatch;
};

Program model_by_name(const std::string& name) {
  if (name == "peterson") return programs::peterson();
  if (name == "trivial-mutex") return programs::trivial_mutex();
  if (name == "ring-4") return programs::ring_leader(4);
  if (name == "ring-5") return programs::ring_leader(5);
  if (name == "dining-3") return programs::dining_philosophers(3);
  if (name == "dining-4") return programs::dining_philosophers(4);
  throw std::runtime_error("unknown test model: " + name);
}

// Verdicts (and outcomes) must be identical for explore_threads 1 vs N on
// every engine the parallel paths cover: CNDFS (nested-DFS / guarantee-dual
// / NBA fallback), the parallel safety-prefix scan, and the (sequential,
// but parallel-explore-fed) SCC engine.
TEST(ParallelEngines, VerdictAgreementAcrossThreadCounts) {
  const Case cases[] = {
      {"dining-4", "G !(eat1 & eat2)", false},          // NestedDfs, holds
      {"dining-4", "G !(eat1 & eat2)", true},           // SafetyPrefix, holds
      {"dining-3", "G !deadlock", false},               // NestedDfs, violated
      {"dining-3", "G !deadlock", true},                // SafetyPrefix, violated
      {"dining-3", "G(hungry1 -> F eat1)", false},      // SCC, violated
      {"ring-5", "F elected", true},                    // GuaranteeDual, holds
      {"ring-5", "G(elected -> maxleader)", true},      // SafetyPrefix, holds
      {"ring-4", "G !quiet", false},                    // NestedDfs, violated
      {"trivial-mutex", "F G (t1 & t2)", false},        // NestedDfs (FG), holds
      {"dining-3", "(F eat1) U deadlock", false},       // NBA fallback, violated
      {"peterson", "G(t1 -> F c1)", false},             // SCC (strong shape), holds
  };
  for (const Case& c : cases) {
    const Program prog = model_by_name(c.model);
    const ltl::Formula spec = ltl::parse_formula(c.spec);
    CheckOptions base;
    base.class_dispatch = c.class_dispatch;
    CheckResult seq = check(prog.system, spec, prog.atoms, base);
    for (unsigned threads : {2u, 4u}) {
      CheckOptions opts = base;
      opts.explore_threads = threads;
      CheckResult par = check(prog.system, spec, prog.atoms, opts);
      EXPECT_EQ(par.holds, seq.holds) << c.model << " ⊨ " << c.spec;
      EXPECT_EQ(par.outcome, seq.outcome) << c.model << " ⊨ " << c.spec;
      EXPECT_EQ(par.stats.engine, seq.stats.engine) << c.model << " ⊨ " << c.spec;
      EXPECT_EQ(par.counterexample.has_value(), seq.counterexample.has_value())
          << c.model << " ⊨ " << c.spec;
      // Holding specs need the full closure on every schedule, so even the
      // product size is thread-count independent.
      if (seq.holds) {
        EXPECT_EQ(par.stats.product_states, seq.stats.product_states)
            << c.model << " ⊨ " << c.spec;
      }
    }
  }
}

/// Replays a counterexample as its atom word against the independent lasso
/// evaluator (same contract as checker_replay_test).
void expect_genuine(const Program& prog, const ltl::Formula& spec,
                    const CheckResult& result) {
  ASSERT_FALSE(result.holds) << spec.to_string();
  ASSERT_TRUE(result.counterexample.has_value()) << spec.to_string();
  const auto& cex = *result.counterexample;
  ASSERT_FALSE(cex.loop.empty());
  auto atom_names = spec.atoms();
  auto alphabet = lang::Alphabet::of_props(atom_names);
  auto symbol_of = [&](const Valuation& v) {
    lang::Symbol s = 0;
    for (std::size_t i = 0; i < atom_names.size(); ++i)
      if (prog.atoms.at(atom_names[i])(prog.system, v, StateGraph::kNone))
        s |= lang::Symbol{1} << i;
    return s;
  };
  omega::Lasso word;
  for (const auto& v : cex.prefix) word.prefix.push_back(symbol_of(v));
  for (const auto& v : cex.loop) word.loop.push_back(symbol_of(v));
  EXPECT_FALSE(ltl::evaluates(spec, word, alphabet))
      << "counterexample does not violate " << spec.to_string();
}

TEST(ParallelEngines, CounterexamplesReplayGenuinely) {
  const Case cases[] = {
      {"dining-3", "G !deadlock", false},           // CNDFS lasso
      {"dining-3", "G !deadlock", true},            // parallel scan bad prefix
      {"dining-3", "G(hungry1 -> F eat1)", false},  // SCC behind parallel explore
      {"ring-4", "G !quiet", false},                // CNDFS on the ring
      {"peterson", "G F c1", false},                // CNDFS, fairness marks
      {"dining-3", "(F eat1) U deadlock", false},   // CNDFS over the NBA tableau
  };
  for (const Case& c : cases) {
    const Program prog = model_by_name(c.model);
    const ltl::Formula spec = ltl::parse_formula(c.spec);
    for (unsigned threads : {1u, 3u}) {
      CheckOptions opts;
      opts.class_dispatch = c.class_dispatch;
      opts.explore_threads = threads;
      expect_genuine(prog, spec, check(prog.system, spec, prog.atoms, opts));
    }
  }
}

// Exploration exhaustion is reported identically for 1 and N threads: the
// whole batch gets the same unknown verdict and the single batch-level
// MPH-V004 names the same state count (exactly the cap).
TEST(ParallelEngines, ExploreExhaustionDiagnosticsIdentical) {
  const Program prog = programs::dining_philosophers(4);
  const ltl::Formula spec = ltl::parse_formula("G !(eat1 & eat2)");
  std::string expected;
  for (unsigned threads : {1u, 2u, 4u}) {
    analysis::DiagnosticEngine diags;
    CheckOptions opts;
    opts.budget.with_state_cap(60);
    opts.explore_threads = threads;
    opts.diagnostics = &diags;
    CheckResult r = check(prog.system, spec, prog.atoms, opts);
    EXPECT_EQ(r.outcome, Outcome::BudgetStates);
    EXPECT_FALSE(r.holds);
    EXPECT_FALSE(r.counterexample.has_value());
    if (threads == 1)
      expected = diags.to_text();
    else
      EXPECT_EQ(diags.to_text(), expected) << "threads=" << threads;
  }
}

// Product exhaustion through CNDFS: 'F G (t1 & t2)' holds on trivial-mutex
// with a 7-pair product over a 5-node graph, so a cap of 6 completes the
// exploration but exhausts the nested-DFS product — at exactly cap + 1
// interned pairs on every thread count (the parallel engines clamp their
// racy intern counter to the sequential stop point).
TEST(ParallelEngines, ProductExhaustionDiagnosticsIdentical) {
  const Program prog = programs::trivial_mutex();
  const ltl::Formula spec = ltl::parse_formula("F G (t1 & t2)");
  std::string expected;
  for (unsigned threads : {1u, 2u, 4u}) {
    analysis::DiagnosticEngine diags;
    CheckOptions opts;
    opts.budget.with_state_cap(6);
    opts.explore_threads = threads;
    opts.diagnostics = &diags;
    CheckResult r = check(prog.system, spec, prog.atoms, opts);
    EXPECT_EQ(r.outcome, Outcome::BudgetStates) << "threads=" << threads;
    EXPECT_FALSE(r.holds);
    EXPECT_EQ(r.stats.product_states, 7u) << "threads=" << threads;
    if (threads == 1)
      expected = diags.to_text();
    else
      EXPECT_EQ(diags.to_text(), expected) << "threads=" << threads;
  }
}

// Holding runs produce identical diagnostics (codes, subjects, messages —
// including the product-size note) across thread counts.
TEST(ParallelEngines, HoldsDiagnosticsIdenticalAcrossThreadCounts) {
  const Case cases[] = {
      {"dining-4", "G !(eat1 & eat2)", false},
      {"dining-4", "G !(eat1 & eat2)", true},
      {"ring-5", "F elected", true},
      {"trivial-mutex", "F G (t1 & t2)", false},
  };
  for (const Case& c : cases) {
    const Program prog = model_by_name(c.model);
    const ltl::Formula spec = ltl::parse_formula(c.spec);
    std::string expected;
    for (unsigned threads : {1u, 3u}) {
      analysis::DiagnosticEngine diags;
      CheckOptions opts;
      opts.class_dispatch = c.class_dispatch;
      opts.explore_threads = threads;
      opts.diagnostics = &diags;
      CheckResult r = check(prog.system, spec, prog.atoms, opts);
      EXPECT_TRUE(r.holds) << c.model << " ⊨ " << c.spec;
      if (threads == 1)
        expected = diags.to_text();
      else
        EXPECT_EQ(diags.to_text(), expected) << c.model << " ⊨ " << c.spec;
    }
  }
}

TEST(ParallelEngines, StatsReportWorkers) {
  const Program prog = programs::dining_philosophers(4);
  CheckOptions opts;
  opts.explore_threads = 3;
  CheckResult r =
      check(prog.system, ltl::parse_formula("G !(eat1 & eat2)"), prog.atoms, opts);
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.stats.threads_used, 3u);
  ASSERT_EQ(r.stats.worker_states.size(), 3u);
  // CNDFS: every worker runs a full nested DFS, so collectively (and in a
  // 1-cpu container, typically individually) they visit the whole product.
  const std::size_t visited = std::accumulate(r.stats.worker_states.begin(),
                                              r.stats.worker_states.end(),
                                              std::size_t{0});
  EXPECT_GE(visited, r.stats.product_states);

  CheckOptions scan = opts;
  scan.class_dispatch = true;
  CheckResult s =
      check(prog.system, ltl::parse_formula("G !(eat1 & eat2)"), prog.atoms, scan);
  EXPECT_TRUE(s.holds);
  EXPECT_EQ(s.stats.engine, CheckEngine::SafetyPrefix);
  EXPECT_EQ(s.stats.threads_used, 3u);
  ASSERT_EQ(s.stats.worker_states.size(), 3u);
  ASSERT_EQ(s.stats.worker_steals.size(), 3u);
  // The scan partitions the product: expansions sum to the product size.
  const std::size_t expanded = std::accumulate(s.stats.worker_states.begin(),
                                               s.stats.worker_states.end(),
                                               std::size_t{0});
  EXPECT_EQ(expanded, s.stats.product_states);
}

TEST(RingLeader, PropertiesUnderBothEngines) {
  const Program prog = programs::ring_leader(5);
  for (bool dispatch : {false, true})
    for (unsigned threads : {1u, 4u}) {
      CheckOptions opts;
      opts.class_dispatch = dispatch;
      opts.explore_threads = threads;
      // Chang–Roberts: some leader is elected under weak fairness, and only
      // the maximal id can win.
      EXPECT_TRUE(
          check(prog.system, ltl::parse_formula("F elected"), prog.atoms, opts).holds);
      EXPECT_TRUE(check(prog.system, ltl::parse_formula("G(elected -> maxleader)"),
                        prog.atoms, opts)
                      .holds);
      EXPECT_TRUE(
          check(prog.system, ltl::parse_formula("F maxleader"), prog.atoms, opts).holds);
      // The channels do drain.
      EXPECT_FALSE(
          check(prog.system, ltl::parse_formula("G !quiet"), prog.atoms, opts).holds);
    }
}

}  // namespace
}  // namespace mph::fts
