// Each premise of the well-founded response rule fails for a distinct,
// diagnosable reason; these tests pin the diagnostics.
#include <gtest/gtest.h>

#include "src/fts/proof_rules.hpp"

namespace mph::fts {
namespace {

/// A counter 0→1→2→3 with one weakly fair "step" transition. p at x=1,
/// q at x=3: the response □(p → ◇q) genuinely holds.
Fts chain_system() {
  Fts s;
  std::size_t x = s.add_var("x", 0, 3, 0);
  s.add_transition(
      "step", Fairness::Weak, [x](const Valuation& v) { return v[x] < 3; },
      [x](Valuation& v) { ++v[x]; });
  return s;
}

Assertion at(std::size_t var, int value) {
  return [var, value](const Valuation& v) { return v[var] == value; };
}

TEST(ResponsePremises, HappyPathProves) {
  Fts s = chain_system();
  auto rank = [](const Valuation& v) { return 3 - v[0]; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto r = verify_response(s, at(0, 1), at(0, 3), rank, helpful);
  EXPECT_TRUE(r.proved) << r.failed_premise;
}

TEST(ResponsePremises, R1NegativeRank) {
  Fts s = chain_system();
  auto rank = [](const Valuation&) { return -1; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto r = verify_response(s, at(0, 1), at(0, 3), rank, helpful);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.failed_premise.substr(0, 2), "R1");
  ASSERT_TRUE(r.witness_state.has_value());
}

TEST(ResponsePremises, R2RankIncrease) {
  Fts s = chain_system();
  // Rank goes up along the chain: violates non-increase.
  auto rank = [](const Valuation& v) { return v[0]; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto r = verify_response(s, at(0, 1), at(0, 3), rank, helpful);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.failed_premise.substr(0, 2), "R2");
}

TEST(ResponsePremises, R3HelpfulDisabled) {
  // A pending state where the designated helpful transition is disabled.
  Fts s;
  std::size_t x = s.add_var("x", 0, 2, 0);
  s.add_transition(
      "go", Fairness::Weak, [x](const Valuation& v) { return v[x] == 0; },
      [x](Valuation& v) { v[x] = 1; });
  // x = 1 is pending (p there, q at 2) and nothing is enabled.
  auto rank = [](const Valuation&) { return 0; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto r = verify_response(s, at(x, 1), at(x, 2), rank, helpful);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.failed_premise.substr(0, 2), "R3");
}

TEST(ResponsePremises, R3NoDesignatedHelpful) {
  Fts s = chain_system();
  auto rank = [](const Valuation& v) { return 3 - v[0]; };
  auto helpful = [](const Valuation&) { return std::size_t{99}; };  // out of range
  auto r = verify_response(s, at(0, 1), at(0, 3), rank, helpful);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.failed_premise.substr(0, 2), "R3");
}

TEST(ResponsePremises, R4UnfairHelpful) {
  Fts s;
  std::size_t x = s.add_var("x", 0, 3, 0);
  s.add_transition(
      "step", Fairness::None, [x](const Valuation& v) { return v[x] < 3; },
      [x](Valuation& v) { ++v[x]; });
  auto rank = [](const Valuation& v) { return 3 - v[0]; };
  auto helpful = [](const Valuation&) { return std::size_t{0}; };
  auto r = verify_response(s, at(x, 1), at(x, 3), rank, helpful);
  EXPECT_FALSE(r.proved);
  EXPECT_EQ(r.failed_premise.substr(0, 2), "R4");
}

TEST(ResponsePremises, R5HelpfulNotConstantPerRank) {
  // Two parallel weakly fair transitions; designate different helpful
  // transitions on two states of equal rank.
  Fts s;
  std::size_t x = s.add_var("x", 0, 3, 0);
  std::size_t y = s.add_var("y", 0, 1, 0);
  s.add_transition(
      "stepA", Fairness::Weak, [x](const Valuation& v) { return v[x] < 3; },
      [x](Valuation& v) { ++v[x]; });
  s.add_transition(
      "flip", Fairness::Weak, [y](const Valuation& v) { return v[y] == 0; },
      [y](Valuation& v) { v[y] = 1; });
  auto rank = [](const Valuation&) { return 1; };  // constant rank
  auto helpful = [y](const Valuation& v) { return v[y] == 0 ? std::size_t{0} : std::size_t{1}; };
  auto r = verify_response(s, at(x, 1), at(x, 3), rank, helpful);
  EXPECT_FALSE(r.proved);
  // Either R5 (inconsistent helpful on rank 1) or R3 (flip does not
  // decrease) fires first depending on exploration order; both diagnose the
  // bad certificate. Pin the actual behaviour:
  EXPECT_TRUE(r.failed_premise.substr(0, 2) == "R5" ||
              r.failed_premise.substr(0, 2) == "R3")
      << r.failed_premise;
}

TEST(ResponsePremises, VacuousWhenNeverPending) {
  Fts s = chain_system();
  // p never holds: the rule is vacuously discharged with any certificate.
  auto never = [](const Valuation&) { return false; };
  auto rank = [](const Valuation&) { return -5; };
  auto helpful = [](const Valuation&) { return std::size_t{42}; };
  auto r = verify_response(s, never, at(0, 3), rank, helpful);
  EXPECT_TRUE(r.proved);
}

}  // namespace
}  // namespace mph::fts
