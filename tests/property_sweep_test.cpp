// Parameterized property sweeps (TEST_P): broad randomized and corpus-driven
// cross-checks of the whole stack — each parameter is an independent test so
// failures localize.
#include <gtest/gtest.h>

#include "src/core/classify.hpp"
#include "src/core/kappa_automata.hpp"
#include "src/lang/dfa_ops.hpp"
#include "src/lang/finitary_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/ltl/semantic.hpp"
#include "src/ltl/syntactic.hpp"
#include "src/ltl/to_nba.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"

namespace mph {
namespace {

using core::PropertyClass;

// ---------------------------------------------------------------------------
// Sweep 1: the §2 operator laws, one seed per test case.

class OperatorLawSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorLawSweep, LawsHoldOnRandomLanguages) {
  Rng rng(GetParam());
  auto sigma = lang::Alphabet::plain({"a", "b"});
  lang::Dfa p1 = lang::random_dfa(rng, sigma, 4);
  lang::Dfa p2 = lang::random_dfa(rng, sigma, 4);
  lang::Dfa b1 = lang::complement_nonepsilon(p1);
  using namespace omega;
  EXPECT_TRUE(equivalent(complement(op_a(p1)), op_e(b1)));
  EXPECT_TRUE(equivalent(complement(op_r(p1)), op_p(b1)));
  EXPECT_TRUE(equivalent(intersection(op_r(p1), op_r(p2)), op_r(lang::minex(p1, p2))));
  EXPECT_TRUE(equivalent(union_of(op_a(p1), op_a(p2)),
                         op_a(lang::union_of(lang::a_f(p1), lang::a_f(p2)))));
  EXPECT_TRUE(equivalent(op_a(p1), op_r(lang::a_f(p1))));
  EXPECT_TRUE(equivalent(op_e(p1), op_p(lang::e_f(p1))));
  // Safety closure is a closure operator: extensive, monotone, idempotent.
  auto m = op_r(p1);
  auto cl = safety_closure(m);
  EXPECT_TRUE(contains(cl, m));
  EXPECT_TRUE(equivalent(safety_closure(cl), cl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorLawSweep,
                         ::testing::Range<std::uint64_t>(1000, 1020));

// ---------------------------------------------------------------------------
// Sweep 2: formula corpus — expected exact class, checked through the
// deterministic pipeline, with syntactic soundness and NBA-check agreement.

struct FormulaCase {
  const char* text;
  PropertyClass expected;
  bool live;
};

void PrintTo(const FormulaCase& c, std::ostream* os) { *os << c.text; }

class FormulaClassSweep : public ::testing::TestWithParam<FormulaCase> {};

TEST_P(FormulaClassSweep, ExactClassAndAgreement) {
  const auto& param = GetParam();
  ltl::Formula f = ltl::parse_formula(param.text);
  auto alphabet = lang::Alphabet::of_props({"p", "q"});
  auto m = ltl::compile(f, alphabet);
  auto sem = core::classify(m);
  EXPECT_EQ(sem.lowest(), param.expected) << sem.describe();
  EXPECT_EQ(sem.liveness, param.live);
  // Syntactic claims are semantically sound.
  auto syn = ltl::syntactic_classification(f);
  for (auto cls : {PropertyClass::Safety, PropertyClass::Guarantee, PropertyClass::Obligation,
                   PropertyClass::Recurrence, PropertyClass::Persistence}) {
    if (syn.is(cls)) {
      EXPECT_TRUE(sem.is(cls)) << "syntactic over-claimed " << core::to_string(cls);
    }
  }
  // NBA-based checks agree where defined (future-only formulas).
  if (!f.has_past()) {
    EXPECT_EQ(ltl::nba_is_safety(f, alphabet), sem.safety);
    EXPECT_EQ(ltl::nba_is_guarantee(f, alphabet), sem.guarantee);
    EXPECT_EQ(ltl::nba_is_liveness(f, alphabet), sem.liveness);
  }
  // Compiled automaton matches the evaluator on small lassos.
  for (const omega::Lasso& l : omega::enumerate_lassos(alphabet, 2, 2))
    ASSERT_EQ(m.accepts(l), ltl::evaluates(f, l, alphabet)) << l.to_string(alphabet);
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, FormulaClassSweep,
    ::testing::Values(
        FormulaCase{"G p", PropertyClass::Safety, false},
        FormulaCase{"G !p", PropertyClass::Safety, false},
        FormulaCase{"G(p | q)", PropertyClass::Safety, false},
        FormulaCase{"F q", PropertyClass::Guarantee, true},
        FormulaCase{"F(p & q)", PropertyClass::Guarantee, true},
        FormulaCase{"!(G p)", PropertyClass::Guarantee, true},
        FormulaCase{"G p | F q", PropertyClass::Obligation, true},
        FormulaCase{"G p & F q", PropertyClass::Obligation, false},
        FormulaCase{"F p -> F q", PropertyClass::Obligation, true},
        FormulaCase{"G F p", PropertyClass::Recurrence, true},
        FormulaCase{"G(p -> F q)", PropertyClass::Recurrence, true},
        FormulaCase{"G F (p & q)", PropertyClass::Recurrence, true},
        FormulaCase{"F G p", PropertyClass::Persistence, true},
        FormulaCase{"p -> F G q", PropertyClass::Persistence, true},
        FormulaCase{"!(G F p)", PropertyClass::Persistence, true},
        FormulaCase{"G F p | F G q", PropertyClass::Reactivity, true},
        FormulaCase{"G F p -> G F q", PropertyClass::Reactivity, true},
        FormulaCase{"G F p & F G q", PropertyClass::Reactivity, true},
        FormulaCase{"p U q", PropertyClass::Guarantee, false},
        FormulaCase{"p W q", PropertyClass::Safety, false},
        FormulaCase{"p R q", PropertyClass::Safety, false},
        FormulaCase{"X p", PropertyClass::Safety, false},
        FormulaCase{"X F p", PropertyClass::Guarantee, true},
        FormulaCase{"G(q -> O p)", PropertyClass::Safety, false},
        FormulaCase{"F(q & Z H p)", PropertyClass::Guarantee, false},
        FormulaCase{"G(p -> G q)", PropertyClass::Safety, false},
        FormulaCase{"G(p -> X q)", PropertyClass::Safety, false},
        FormulaCase{"G(p -> F G q)", PropertyClass::Persistence, true},
        // □(p → □◇q) = □¬p ∨ □◇q: a union of safety and recurrence,
        // hence recurrence (not merely reactivity).
        FormulaCase{"G(p -> G F q)", PropertyClass::Recurrence, true},
        FormulaCase{"true U q", PropertyClass::Guarantee, true}));

// ---------------------------------------------------------------------------
// Sweep 3: κ-automaton constructions round-trip per seed.

class KappaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KappaSweep, ConstructionsPreserveLanguages) {
  Rng rng(GetParam());
  auto sigma = lang::Alphabet::plain({"a", "b"});
  lang::Dfa phi = lang::random_dfa(rng, sigma, 4);
  auto a = omega::op_a(phi);
  auto e = omega::op_e(phi);
  auto r = omega::op_r(phi);
  auto p = omega::op_p(phi);
  EXPECT_TRUE(omega::equivalent(core::to_safety_automaton(a), a));
  EXPECT_TRUE(omega::equivalent(core::to_guarantee_automaton(e), e));
  EXPECT_TRUE(omega::equivalent(core::to_recurrence_automaton(r), r));
  EXPECT_TRUE(omega::equivalent(core::to_persistence_automaton(p), p));
  // Boolean combinations of safety and guarantee are obligations, hence both
  // recurrence- and persistence-realizable.
  auto obl = union_of(a, e);
  EXPECT_TRUE(omega::equivalent(core::to_recurrence_automaton(obl), obl));
  EXPECT_TRUE(omega::equivalent(core::to_persistence_automaton(obl), obl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KappaSweep, ::testing::Range<std::uint64_t>(2000, 2015));

// ---------------------------------------------------------------------------
// Sweep 4: classification invariants on random Streett-style automata.

class StreettInvariantSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreettInvariantSweep, FigureOneInvariants) {
  Rng rng(GetParam());
  auto sigma = lang::Alphabet::plain({"a", "b"});
  // Random 2-pair Streett automaton via the public builder.
  omega::DetOmega m(sigma, 6, 0, omega::Acceptance::t());
  for (omega::State q = 0; q < 6; ++q)
    for (omega::Symbol s = 0; s < 2; ++s)
      m.set_transition(q, s, static_cast<omega::State>(rng.below(6)));
  std::vector<omega::StreettPair> pairs(2);
  for (auto& pr : pairs) {
    for (omega::State q = 0; q < 6; ++q) {
      if (rng.chance(1, 4)) pr.r.push_back(q);
      if (rng.chance(1, 2)) pr.p.push_back(q);
    }
  }
  omega::apply_streett_pairs(m, pairs);
  auto c = core::classify(m);
  EXPECT_EQ(c.obligation, c.recurrence && c.persistence);
  if (c.safety || c.guarantee) {
    EXPECT_TRUE(c.obligation);
  }
  auto cc = core::classify(omega::complement(m));
  EXPECT_EQ(c.safety, cc.guarantee);
  EXPECT_EQ(c.guarantee, cc.safety);
  EXPECT_EQ(c.recurrence, cc.persistence);
  EXPECT_EQ(c.persistence, cc.recurrence);
  // The language and its closure agree on liveness orthogonality:
  // cl(Π) ⊇ Π and cl is safety.
  auto cl = omega::safety_closure(m);
  EXPECT_TRUE(omega::contains(cl, m));
  EXPECT_TRUE(core::is_safety(cl));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreettInvariantSweep,
                         ::testing::Range<std::uint64_t>(3000, 3025));

}  // namespace
}  // namespace mph
