#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/random_lang.hpp"
#include "src/lang/regex.hpp"
#include "src/lang/regex_print.hpp"

namespace mph::lang {
namespace {

Alphabet ab() { return Alphabet::plain({"a", "b"}); }

TEST(RegexPrint, RoundTripsCanonicalLanguages) {
  auto sigma = ab();
  const char* corpus[] = {"a",        "ab",         "a*",    "a+b*",      "(a|b)*b",
                          "(a*b)+",   "a(a|b)*",    "%",     "a|%",       "(a|b)(a|b)",
                          "!(b*)",    "a*b*&(a|b)a*"};
  for (const char* re : corpus) {
    Dfa original = compile_regex(re, sigma);
    std::string printed = to_regex(original);
    Dfa reparsed = compile_regex(printed, sigma);
    EXPECT_TRUE(equivalent(original, reparsed)) << re << " printed as " << printed;
  }
}

TEST(RegexPrint, RoundTripsRandomDfas) {
  Rng rng(2718);
  auto sigma = ab();
  for (int trial = 0; trial < 30; ++trial) {
    Dfa d = random_dfa(rng, sigma, 4);
    std::string printed = to_regex(d);
    EXPECT_TRUE(equivalent(d, compile_regex(printed, sigma))) << printed;
  }
}

TEST(RegexPrint, EmptyAndUniversal) {
  auto sigma = ab();
  EXPECT_EQ(to_regex(empty_dfa(sigma)), "@");
  Dfa all = universal_dfa(sigma);
  EXPECT_TRUE(equivalent(all, compile_regex(to_regex(all), sigma)));
}

TEST(RegexPrint, ThreeLetterAlphabet) {
  auto sigma = Alphabet::plain({"a", "b", "c"});
  Dfa d = compile_regex("(a|b)*c(a|b|c)*", sigma);
  EXPECT_TRUE(equivalent(d, compile_regex(to_regex(d), sigma)));
}

TEST(RegexPrint, LengthCapThrows) {
  Rng rng(3141);
  auto sigma = Alphabet::plain({"a", "b", "c"});
  Dfa d = random_dfa(rng, sigma, 10);
  EXPECT_THROW(to_regex(d, /*max_length=*/4), std::invalid_argument);
}

TEST(RegexPrint, SimplificationsKeepOutputReadable) {
  auto sigma = ab();
  // a* should print as something short, not a union tower.
  std::string printed = to_regex(compile_regex("a*", sigma));
  EXPECT_LE(printed.size(), 8u) << printed;
}

}  // namespace
}  // namespace mph::lang
