#include <gtest/gtest.h>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/regex.hpp"

namespace mph::lang {
namespace {

Alphabet ab() { return Alphabet::plain({"a", "b"}); }

TEST(Regex, SingleLetter) {
  Dfa d = compile_regex("a", ab());
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_FALSE(d.accepts_text("b"));
  EXPECT_FALSE(d.accepts_text(""));
  EXPECT_FALSE(d.accepts_text("aa"));
}

TEST(Regex, Concatenation) {
  Dfa d = compile_regex("ab", ab());
  EXPECT_TRUE(d.accepts_text("ab"));
  EXPECT_FALSE(d.accepts_text("ba"));
  EXPECT_FALSE(d.accepts_text("a"));
}

TEST(Regex, UnionBindsLoosest) {
  Dfa d = compile_regex("ab|ba", ab());
  EXPECT_TRUE(d.accepts_text("ab"));
  EXPECT_TRUE(d.accepts_text("ba"));
  EXPECT_FALSE(d.accepts_text("aa"));
}

TEST(Regex, StarPlusOptional) {
  auto sigma = ab();
  Dfa star = compile_regex("a*", sigma);
  EXPECT_TRUE(star.accepts_text(""));
  EXPECT_TRUE(star.accepts_text("aaa"));
  EXPECT_FALSE(star.accepts_text("ab"));
  Dfa plus = compile_regex("a+", sigma);
  EXPECT_FALSE(plus.accepts_text(""));
  EXPECT_TRUE(plus.accepts_text("a"));
  Dfa opt = compile_regex("ab?", sigma);
  EXPECT_TRUE(opt.accepts_text("a"));
  EXPECT_TRUE(opt.accepts_text("ab"));
  EXPECT_FALSE(opt.accepts_text("abb"));
}

TEST(Regex, PaperExampleAPlusBStar) {
  // Φ = a⁺b* from §2.
  Dfa d = compile_regex("a+b*", ab());
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_TRUE(d.accepts_text("aab"));
  EXPECT_TRUE(d.accepts_text("abbb"));
  EXPECT_FALSE(d.accepts_text("b"));
  EXPECT_FALSE(d.accepts_text("aba"));
}

TEST(Regex, DotMatchesAnySymbol) {
  auto sigma = Alphabet::plain({"a", "b", "c"});
  Dfa d = compile_regex(".*c", sigma);
  EXPECT_TRUE(d.accepts_text("abc"));
  EXPECT_TRUE(d.accepts_text("c"));
  EXPECT_FALSE(d.accepts_text("ab"));
}

TEST(Regex, EpsilonAndEmpty) {
  auto sigma = ab();
  Dfa eps = compile_regex("%", sigma);
  EXPECT_TRUE(eps.accepts_text(""));
  EXPECT_FALSE(eps.accepts_text("a"));
  Dfa none = compile_regex("@", sigma);
  EXPECT_TRUE(is_empty(none));
  Dfa combo = compile_regex("%|a", sigma);
  EXPECT_TRUE(combo.accepts_text(""));
  EXPECT_TRUE(combo.accepts_text("a"));
}

TEST(Regex, IntersectionOperator) {
  auto sigma = ab();
  Dfa d = compile_regex("(a|b)*a&a(a|b)*", sigma);  // starts and ends with a
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_TRUE(d.accepts_text("aba"));
  EXPECT_FALSE(d.accepts_text("ab"));
  EXPECT_FALSE(d.accepts_text("ba"));
}

TEST(Regex, ComplementOperator) {
  auto sigma = ab();
  Dfa d = compile_regex("!(b*)", sigma);  // contains an a
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_TRUE(d.accepts_text("bab"));
  EXPECT_FALSE(d.accepts_text(""));
  EXPECT_FALSE(d.accepts_text("bbb"));
  EXPECT_TRUE(equivalent(d, compile_regex("(a|b)*a(a|b)*", sigma)));
}

TEST(Regex, PrecedenceStarBeforeConcatBeforeUnion) {
  auto sigma = ab();
  // ab* = a(b*), not (ab)*.
  Dfa d = compile_regex("ab*", sigma);
  EXPECT_TRUE(d.accepts_text("a"));
  EXPECT_TRUE(d.accepts_text("abb"));
  EXPECT_FALSE(d.accepts_text("abab"));
  // a|b* accepts ε (right side), unlike (a|b)*... which also accepts ε; use bb.
  Dfa e = compile_regex("a|b*", sigma);
  EXPECT_TRUE(e.accepts_text("bb"));
  EXPECT_FALSE(e.accepts_text("ab"));
}

TEST(Regex, NestedGroups) {
  auto sigma = ab();
  Dfa d = compile_regex("((a|b)b)+", sigma);
  EXPECT_TRUE(d.accepts_text("ab"));
  EXPECT_TRUE(d.accepts_text("bbab"));
  EXPECT_FALSE(d.accepts_text("aab"));
}

TEST(Regex, SyntaxErrorsThrow) {
  auto sigma = ab();
  EXPECT_THROW(compile_regex("(a", sigma), std::invalid_argument);
  EXPECT_THROW(compile_regex("a)", sigma), std::invalid_argument);
  EXPECT_THROW(compile_regex("x", sigma), std::invalid_argument);
  EXPECT_THROW(compile_regex("*a", sigma), std::invalid_argument);
  EXPECT_THROW(compile_regex("a||b", sigma), std::invalid_argument);
}

TEST(Regex, ResultIsMinimal) {
  auto sigma = ab();
  Dfa d = compile_regex("(a|b)(a|b)", sigma);
  // Minimal DFA for exactly-two-symbols over a 2-letter alphabet: 4 states
  // (0, 1, 2-accepting, dead).
  EXPECT_EQ(d.state_count(), 4u);
}

TEST(Regex, DeMorganOnLanguages) {
  auto sigma = ab();
  Dfa lhs = compile_regex("!(a*&(a|b)*b)", sigma);
  Dfa rhs = compile_regex("!(a*)|!((a|b)*b)", sigma);
  EXPECT_TRUE(equivalent(lhs, rhs));
}

}  // namespace
}  // namespace mph::lang
