// The hierarchy-form rewriter in isolation: every rewrite must preserve
// position-0 semantics (checked against the lasso evaluator), and the
// rewriter must be idempotent on its own output.
#include <gtest/gtest.h>

#include "src/ltl/eval.hpp"
#include "src/ltl/hierarchy.hpp"

namespace mph::ltl {
namespace {

class RewriterSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(RewriterSweep, PreservesSemanticsAndIsIdempotent) {
  Formula f = parse_formula(GetParam());
  Formula g = to_hierarchy_form(f);
  auto a = lang::Alphabet::of_props({"p", "q"});
  for (const omega::Lasso& l : omega::enumerate_lassos(a, 2, 3))
    ASSERT_EQ(evaluates(f, l, a), evaluates(g, l, a))
        << GetParam() << " rewrote to " << g.to_string() << " @ " << l.to_string(a);
  // A fixpoint: rewriting the output changes nothing.
  EXPECT_EQ(to_hierarchy_form(g), g) << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, RewriterSweep,
    ::testing::Values(
        // Response and conditional shapes.
        "G(p -> F q)", "G(q -> F p)", "G((p & q) -> F(p | q))", "G(p -> G q)",
        "G(p -> X q)", "G(p -> F G q)", "G(p -> G F q)",
        // Next shifts, individually and stacked.
        "X p", "X X p", "X X X p", "X G p", "X F p", "X G F p", "X F G p",
        "X(p & G q)", "X !p", "X(p -> q)",
        // Until family over past kernels.
        "p U q", "p W q", "p R q", "(O p) U q", "p U (q & O p)",
        // Distribution.
        "G(p & F q)", "F(p | G q)", "G(G p)", "F(F p)", "G F F p", "F G G p",
        // Boolean shells.
        "!(G(p -> F q))", "G p -> F q", "(p U q) | G p", "G p <-> F q",
        // Already-canonical forms pass through.
        "G p", "F p", "G F p", "F G p", "p", "O p", "G(q -> O p)"));

TEST(Rewriter, ResponseKernelShape) {
  // The response rewrite produces the documented □◇ kernel.
  Formula g = to_hierarchy_form(parse_formula("G(p -> F q)"));
  EXPECT_EQ(g.op(), Op::Always);
  EXPECT_EQ(g.child(0).op(), Op::Eventually);
  EXPECT_TRUE(g.child(0).child(0).is_past_formula());
}

TEST(Rewriter, LeavesUnsupportedShapesIntact) {
  // Until over future operands cannot be rewritten; the formula survives
  // unchanged (and compile() then throws).
  Formula f = parse_formula("(F p) U (G q)");
  Formula g = to_hierarchy_form(f);
  EXPECT_EQ(g.op(), Op::Until);
}

}  // namespace
}  // namespace mph::ltl
