// The mph-serve request engine in process (docs/SERVE.md): content digests,
// the formula/verdict caches, batch dedup, admission clamping, the
// deadline-between-legs Unknown path, and the wire JSON layer.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/serve/cache.hpp"
#include "src/serve/json.hpp"
#include "src/serve/replay_oracle.hpp"
#include "src/serve/server.hpp"
#include "src/support/rng.hpp"

namespace mph::serve {
namespace {

Json req(const std::string& line) { return Json::parse(line); }

const Json* result0(const Json& response) {
  const Json* results = response.find("results");
  if (!results || !results->is_array() || results->as_array().empty()) return nullptr;
  return &results->as_array()[0];
}

std::string field(const Json& j, const char* key) {
  const Json* v = j.find(key);
  return v && v->is_string() ? v->as_string() : std::string();
}

// ---------------------------------------------------------------- digests

TEST(ServeDigest, CanonicalizationSharesDigest) {
  FormulaCache cache;
  bool hit = false;
  const auto a = cache.intern("G  (p ->  F q)", hit);
  EXPECT_FALSE(hit);
  const auto b = cache.intern("G(p -> F q)", hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a, b);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(digest_hex(a).size(), 16u);
}

TEST(ServeDigest, DistinctFormulasDistinctDigests) {
  FormulaCache cache;
  bool hit = false;
  EXPECT_NE(cache.intern("G p", hit), cache.intern("F p", hit));
}

TEST(ServeDigest, ModelDigestIsContentAddressed) {
  fuzz::FtsSpec spec;
  spec.vars.push_back({"x", 0, 1, 0});
  fuzz::FtsSpec::Trans t;
  t.name = "t1";
  t.fairness = fts::Fairness::Weak;
  t.effects.push_back({0, 0, 1});
  spec.transitions.push_back(t);

  const auto base = model_digest(spec);
  EXPECT_EQ(base, model_digest(spec)) << "digest must be deterministic";

  fuzz::FtsSpec delta = spec;
  delta.vars[0].init = 1;
  EXPECT_NE(base, model_digest(delta)) << "a model delta must change the digest";
  EXPECT_NE(builtin_model_digest("peterson"), builtin_model_digest("dining-3"));
}

TEST(ServeDigest, OptionsDigestKeysEngineRoutes) {
  fts::CheckOptions base;
  fts::CheckOptions scc = base;
  scc.force_scc = true;
  fts::CheckOptions par = base;
  par.explore_threads = 2;
  fts::CheckOptions dispatch = base;
  dispatch.class_dispatch = true;
  EXPECT_NE(options_digest(base), options_digest(scc));
  EXPECT_NE(options_digest(base), options_digest(par));
  EXPECT_NE(options_digest(base), options_digest(dispatch));
  EXPECT_NE(options_digest(scc), options_digest(par));
}

// ------------------------------------------------------------- wire JSON

TEST(ServeJson, RoundTripsControlCharacters) {
  // The dump side goes through analysis::json_escape; the parse side
  // rejects raw control characters and understands the escapes. A string
  // holding every ASCII control character must survive the round trip.
  std::string hostile;
  for (char c = 1; c < 0x20; ++c) hostile.push_back(c);
  hostile += "plain \"quoted\" \\backslash\\";
  const Json doc = Json::object({{"s", Json::string(hostile)}});
  const Json back = Json::parse(doc.dump());
  EXPECT_EQ(back.find("s")->as_string(), hostile);
}

TEST(ServeJson, RejectsRawControlAndTrailingGarbage) {
  EXPECT_THROW(Json::parse("{\"s\": \"a\nb\"}"), std::invalid_argument);
  EXPECT_THROW(Json::parse("{} trailing"), std::invalid_argument);
  EXPECT_THROW(Json::parse(""), std::invalid_argument);
}

TEST(ServeJson, NumbersKeepExactIntegerView) {
  EXPECT_EQ(Json::parse("7").as_u64(), std::uint64_t{7});
  EXPECT_FALSE(Json::parse("3.5").as_u64().has_value());
  EXPECT_FALSE(Json::parse("1e9").as_u64().has_value()) << "exponent form is not exact";
  EXPECT_FALSE(Json::parse("-1").as_u64().has_value());
}

// --------------------------------------------------------------- caching

TEST(ServeServer, WarmHitAgreesWithColdVerdict) {
  Server server;
  const std::string line =
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js";
  const Json cold = req(server.handle_line(line));
  const Json warm = req(server.handle_line(line));
  ASSERT_TRUE(result0(cold) && result0(warm));
  EXPECT_EQ(field(*result0(cold), "cache"), "miss");
  EXPECT_EQ(field(*result0(warm), "cache"), "hit");
  EXPECT_EQ(field(*result0(cold), "verdict"), "holds");
  EXPECT_EQ(field(*result0(warm), "verdict"), field(*result0(cold), "verdict"));
  EXPECT_EQ(server.verdict_cache().size(), 1u);
}

TEST(ServeServer, EngineOptionVariantsAreKeyedSeparately) {
  Server server;
  const Json plain = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js"));
  const Json scc = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"],"force_scc":true})js"));
  const Json par = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"],"explore_threads":2})js"));
  EXPECT_EQ(field(*result0(scc), "cache"), "miss")
      << "force_scc must not be served from the default route's entry";
  EXPECT_EQ(field(*result0(par), "cache"), "miss")
      << "explore_threads must not be served from the default route's entry";
  // Three distinct cache keys, one verdict.
  EXPECT_EQ(server.verdict_cache().size(), 3u);
  EXPECT_EQ(field(*result0(plain), "verdict"), "holds");
  EXPECT_EQ(field(*result0(scc), "verdict"), "holds");
  EXPECT_EQ(field(*result0(par), "verdict"), "holds");
  EXPECT_NE(field(plain, "options_digest"), field(scc, "options_digest"));
  EXPECT_NE(field(plain, "options_digest"), field(par, "options_digest"));
}

TEST(ServeServer, DuplicateSpecsInOneBatchShareOneComputation) {
  Server server;
  const Json response = req(server.handle_line(
      R"js({"op":"check","model":"peterson",)js"
      R"js("specs":["G !(c1 & c2)","G  !(c1  &  c2)","G(t1 -> F c1)"]})js"));
  const auto& results = response.find("results")->as_array();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(field(results[0], "cache"), "miss");
  EXPECT_EQ(field(results[1], "cache"), "dedup")
      << "a different spelling of the same canonical spec must fold into the "
         "batch's single computation";
  EXPECT_EQ(field(results[2], "cache"), "miss");
  EXPECT_EQ(field(results[0], "digest"), field(results[1], "digest"));
  EXPECT_EQ(server.batch_dedups(), 1u);
  // One entry per unique (model, spec, opts) key — the duplicate did not
  // produce a second entry.
  EXPECT_EQ(server.verdict_cache().size(), 2u);
}

// ------------------------------------------------- cross-spec subsumption

TEST(ServeServer, SubsumeSharingTransfersHoldingDonor) {
  Server server;
  const Json donor = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js"));
  EXPECT_EQ(field(*result0(donor), "cache"), "miss");
  // L(G φ) ⊆ L(F φ): the cached holding donor implies the new spec, so its
  // verdict transfers without running the model checker.
  const Json derived = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["F !(c1 & c2)"]})js"));
  const Json* r = result0(derived);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "cache"), "subsume");
  EXPECT_EQ(field(*r, "verdict"), "holds");
  EXPECT_EQ(field(*r, "via"), field(*result0(donor), "digest"))
      << "the response must name the donor whose entry proved the verdict";
  EXPECT_EQ(server.subsume_hits(), 1u);
  EXPECT_GE(server.implication_checks(), 1u);
  EXPECT_EQ(server.verdict_cache().size(), 1u)
      << "a derived verdict carries the donor's stats, not its own entry";
}

TEST(ServeServer, SubsumeSharingTransfersViolation) {
  Server server;
  const Json donor = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G c1"]})js"));
  ASSERT_EQ(field(*result0(donor), "verdict"), "violated");
  // L(G (c1 & c2)) ⊆ L(G c1): the donor's violating computation lies
  // outside the larger language, hence outside the smaller one too.
  const Json derived = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G (c1 & c2)"]})js"));
  const Json* r = result0(derived);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "cache"), "subsume");
  EXPECT_EQ(field(*r, "verdict"), "violated");
  EXPECT_EQ(field(*r, "via"), field(*result0(donor), "digest"));
}

TEST(ServeServer, SubsumeSharingDisabledByConfig) {
  ServerConfig config;
  config.subsume_sharing = false;
  Server server(config);
  (void)server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js");
  const Json second = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["F !(c1 & c2)"]})js"));
  EXPECT_EQ(field(*result0(second), "cache"), "miss")
      << "with sharing off every distinct spec must compute";
  EXPECT_EQ(server.subsume_hits(), 0u);
  EXPECT_EQ(server.implication_checks(), 0u);
}

TEST(ServeServer, ClassifyReportsNbaExactSource) {
  // A rescue-family member: the ΔΓ-rewriter refuses it, the Büchi closure
  // tests (docs/COMPLEMENT.md) still establish the exact class.
  Server server;
  const Json response = req(server.handle_line(
      R"js({"op":"classify","formula":"F (p & X (p U q))"})js"));
  ASSERT_TRUE(response.find("ok")->as_bool());
  EXPECT_EQ(field(response, "exact"), "guarantee");
  EXPECT_EQ(field(response, "exact_source"), "nba");
  const Json warm = req(server.handle_line(
      R"js({"op":"classify","formula":"F (p & X (p U q))"})js"));
  EXPECT_EQ(field(warm, "cache"), "hit") << "an NBA-established class is memoized";
  EXPECT_EQ(field(warm, "exact_source"), "nba");
}

TEST(ServeServer, ModelDeltaInvalidatesOnlyItsOwnDigest) {
  Server server;
  const std::string base =
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":1,"init":0}],)js"
      R"js("transitions":[{"name":"t1","fairness":"weak",)js"
      R"js("effects":[{"var":0,"src":0,"add":1}]}]},"specs":["F xhi"]})js";
  const std::string delta =
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":1,"init":1}],)js"
      R"js("transitions":[{"name":"t1","fairness":"weak",)js"
      R"js("effects":[{"var":0,"src":0,"add":1}]}]},"specs":["F xhi"]})js";
  const Json cold = req(server.handle_line(base));
  const Json changed = req(server.handle_line(delta));
  const Json warm = req(server.handle_line(base));
  EXPECT_NE(field(cold, "model_digest"), field(changed, "model_digest"));
  EXPECT_EQ(field(*result0(changed), "cache"), "miss")
      << "the delta's digest has no cached entries";
  EXPECT_EQ(field(*result0(warm), "cache"), "hit")
      << "the untouched model's entry must survive the delta";
  // Explicit invalidation drops exactly the named model's entries.
  const Json inv = req(server.handle_line(
      R"js({"op":"invalidate","model_digest":")js" + field(cold, "model_digest") +
      R"js("})js"));
  EXPECT_EQ(inv.find("invalidated")->as_u64(), std::uint64_t{1});
  const Json recompute = req(server.handle_line(base));
  EXPECT_EQ(field(*result0(recompute), "cache"), "miss");
  const Json other = req(server.handle_line(delta));
  EXPECT_EQ(field(*result0(other), "cache"), "hit")
      << "invalidation must not touch other models";
}

TEST(ServeServer, InlineModelBoxSafetyProvesStatically) {
  // An inline FtsSpec carries its symbolic description into the server, so a
  // box-safety spec resolves through the interval static prover: engine
  // "static", zero product states, and the verdict caches like any other.
  Server server;
  const std::string line =
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":3,"init":0},)js"
      R"js({"name":"alarm","lo":0,"hi":1,"init":0}],)js"
      R"js("transitions":[{"name":"inc","fairness":"weak",)js"
      R"js("guard":[{"var":0,"op":0,"rhs":1}],)js"
      R"js("effects":[{"var":0,"src":0,"add":1}]}]},"specs":["G alarmlo"]})js";
  const Json cold = req(server.handle_line(line));
  ASSERT_TRUE(cold.find("ok")->as_bool());
  const Json* r = result0(cold);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "verdict"), "holds");
  EXPECT_EQ(field(*r, "cache"), "miss");
  EXPECT_EQ(field(*r, "engine"), "static") << "box safety must not explore";
  EXPECT_EQ(r->find("product_states")->as_u64(), std::uint64_t{0});
  const Json warm = req(server.handle_line(line));
  EXPECT_EQ(field(*result0(warm), "cache"), "hit");
  EXPECT_EQ(field(*result0(warm), "engine"), "static");
}

TEST(ServeServer, UnsatisfiableGuardIsAStructuredBadRequest) {
  // A guard no value of the variable's domain can satisfy is a malformed
  // model, not a checkable one: the request must fail with a structured
  // bad-request naming the variable, and the server must keep serving.
  Server server;
  const Json response = req(server.handle_line(
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":1,"init":0}],)js"
      R"js("transitions":[{"name":"t1","fairness":"weak",)js"
      R"js("guard":[{"var":0,"op":2,"rhs":5}],)js"
      R"js("effects":[{"var":0,"src":0,"add":1}]}]},"specs":["F xhi"]})js"));
  ASSERT_FALSE(response.find("ok")->as_bool());
  const Json* error = response.find("error");
  ASSERT_TRUE(error);
  EXPECT_EQ(field(*error, "code"), "bad-request");
  EXPECT_NE(field(*error, "message").find("unsatisfiable"), std::string::npos);
  EXPECT_NE(field(*error, "message").find("'x'"), std::string::npos);
  // An in-domain guard on the same wire works fine afterwards.
  const Json retry = req(server.handle_line(
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":1,"init":0}],)js"
      R"js("transitions":[{"name":"t1","fairness":"weak",)js"
      R"js("guard":[{"var":0,"op":0,"rhs":1}],)js"
      R"js("effects":[{"var":0,"src":0,"add":1}]}]},"specs":["F xhi"]})js"));
  ASSERT_TRUE(retry.find("ok")->as_bool());
  EXPECT_EQ(field(*result0(retry), "verdict"), "holds");
}

// ------------------------------------------------- budgets and admission

TEST(ServeServer, ExpiredDeadlineYieldsStructuredUnknown) {
  Server server;
  const Json response = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G(t1 -> F c1)"],"budget_ms":0})js"));
  ASSERT_TRUE(response.find("ok")->as_bool());
  const Json* r = result0(response);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "verdict"), "unknown");
  EXPECT_EQ(field(*r, "outcome"), "budget-deadline");
  bool v004 = false;
  for (const auto& d : response.find("diagnostics")->as_array())
    v004 = v004 || field(d, "code") == "MPH-V004";
  EXPECT_TRUE(v004) << "the between-legs gate must emit MPH-V004";
  EXPECT_EQ(server.verdict_cache().size(), 0u) << "exhaustion must never be cached";
  EXPECT_EQ(server.budget_exhaustions(), 1u);

  // The same spec without the dead budget computes normally.
  const Json retry = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G(t1 -> F c1)"]})js"));
  EXPECT_EQ(field(*result0(retry), "cache"), "miss");
  EXPECT_EQ(field(*result0(retry), "verdict"), "holds");
}

TEST(ServeServer, RequestBudgetsAreClampedToServerCeilings) {
  ServerConfig config;
  config.max_budget_states = 3;  // below peterson's 15 reachable states
  Server server(config);
  const Json response = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G(t1 -> F c1)"],)js"
      R"js("budget_states":1000000})js"));
  const Json* r = result0(response);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "verdict"), "unknown")
      << "a request may only lower the server's state ceiling";
  EXPECT_EQ(field(*r, "outcome"), "budget-states");
}

TEST(ServeServer, BaseBudgetDeadlineCombinesWithRequestDeadline) {
  ServerConfig config;
  config.base_budget.with_deadline(Budget::Clock::now());  // already expired
  Server server(config);
  const Json response = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"],)js"
      R"js("budget_ms":60000})js"));
  const Json* r = result0(response);
  ASSERT_TRUE(r);
  EXPECT_EQ(field(*r, "outcome"), "budget-deadline")
      << "the earlier of base and request deadlines must win";
}

// ----------------------------------------------------- protocol behavior

TEST(ServeServer, MalformedRequestsAreStructuredErrors) {
  Server server;
  const Json bad_json = req(server.handle_line("{nope"));
  EXPECT_FALSE(bad_json.find("ok")->as_bool());
  EXPECT_EQ(field(*bad_json.find("error"), "code"), "bad-json");

  const Json bad_op = req(server.handle_line(R"js({"op":"frobnicate"})js"));
  EXPECT_EQ(field(*bad_op.find("error"), "code"), "bad-request");

  const Json bad_model = req(server.handle_line(
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":1,"hi":0,"init":0}],)js"
      R"js("transitions":[]},"specs":["G p"]})js"));
  EXPECT_EQ(field(*bad_model.find("error"), "code"), "bad-request")
      << "an empty variable domain must be rejected at validation";

  const Json bad_budget = req(server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G p"],"budget_ms":"soon"})js"));
  EXPECT_EQ(field(*bad_budget.find("error"), "code"), "bad-request");

  // Duplicate variable names would make atom bindings ambiguous (two vars
  // both answering "x" / "xhi"): rejected at validation, never half-built.
  const Json dup_var = req(server.handle_line(
      R"js({"op":"check","model":{"vars":[{"name":"x","lo":0,"hi":1,"init":0},)js"
      R"js({"name":"x","lo":0,"hi":2,"init":0}],)js"
      R"js("transitions":[]},"specs":["G p"]})js"));
  EXPECT_EQ(field(*dup_var.find("error"), "code"), "bad-request");
  EXPECT_NE(field(*dup_var.find("error"), "message").find("duplicate"),
            std::string::npos);

  // The server survives all of the above.
  const Json ok = req(server.handle_line(R"js({"op":"parse","formula":"G p"})js"));
  EXPECT_TRUE(ok.find("ok")->as_bool());
}

TEST(ServeServer, IdEchoesBackFirst) {
  Server server;
  const Json response =
      req(server.handle_line(R"js({"op":"parse","id":41,"formula":"G p"})js"));
  ASSERT_FALSE(response.as_object().empty());
  EXPECT_EQ(response.as_object()[0].first, "id");
  EXPECT_EQ(response.find("id")->as_u64(), std::uint64_t{41});
}

TEST(ServeServer, StatsCountEndpointsAndCaches) {
  Server server;
  (void)server.handle_line(R"js({"op":"parse","formula":"G p"})js");
  (void)server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js");
  (void)server.handle_line(
      R"js({"op":"check","model":"peterson","specs":["G !(c1 & c2)"]})js");
  (void)server.handle_line("garbage");
  const Json stats = *req(server.handle_line(R"js({"op":"stats"})js")).find("stats");
  EXPECT_EQ(stats.find("requests")->as_u64(), std::uint64_t{4});
  const Json& endpoints = *stats.find("endpoints");
  EXPECT_EQ(endpoints.find("parse")->find("count")->as_u64(), std::uint64_t{1});
  EXPECT_EQ(endpoints.find("check")->find("count")->as_u64(), std::uint64_t{2});
  EXPECT_EQ(endpoints.find("invalid")->find("errors")->as_u64(), std::uint64_t{1});
  const Json& verdict = *stats.find("caches")->find("verdict");
  EXPECT_EQ(verdict.find("hits")->as_u64(), std::uint64_t{1});
  EXPECT_EQ(verdict.find("misses")->as_u64(), std::uint64_t{1});
  EXPECT_NE(server.stats_text().find("verdict cache"), std::string::npos);
}

TEST(ServeMetrics, PercentilesAreOrderStatistics) {
  EndpointMetrics m;
  EXPECT_EQ(m.percentile(0.5), 0.0);
  for (double v : {5.0, 1.0, 9.0, 3.0, 7.0}) m.latency_us.push_back(v);
  EXPECT_EQ(m.percentile(0.0), 1.0);
  EXPECT_EQ(m.percentile(0.5), 5.0);  // sorted[2]
  EXPECT_EQ(m.percentile(0.99), 9.0);
}

TEST(ServeMetrics, NearestRankNeverRoundsUpARank) {
  // The regression this sweep fixed: q·n truncation sat one rank high, so
  // p50 of {1, 2} reported 2. Nearest rank is the ⌈q·n⌉-th smallest.
  EndpointMetrics m;
  m.latency_us = {2.0, 1.0};
  EXPECT_EQ(m.percentile(0.5), 1.0);
  EXPECT_EQ(m.percentile(0.51), 2.0);
  EXPECT_EQ(m.percentile(1.0), 2.0);
  m.latency_us = {4.0};
  EXPECT_EQ(m.percentile(0.5), 4.0);
  EXPECT_EQ(m.percentile(0.0), 4.0);
}

TEST(ServeMetrics, LatencyRingKeepsNewestSamples) {
  EndpointMetrics m;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) m.record(v, 3);
  ASSERT_EQ(m.latency_us.size(), 3u) << "the ring must stay bounded at cap";
  EXPECT_EQ(m.percentile(0.0), 3.0) << "the oldest surviving sample is 3";
  EXPECT_EQ(m.percentile(1.0), 5.0);
  // Another wrap replaces 3 (the oldest) next.
  m.record(6.0, 3);
  EXPECT_EQ(m.percentile(0.0), 4.0);
  m.record(7.0, 0);
  EXPECT_EQ(m.latency_us.size(), 3u) << "cap 0 records nothing";
}

// ------------------------------------------------------------- the oracle

TEST(ServeReplay, OracleAgreesOnSeededStreams) {
  const fuzz::Oracle oracle = serve_replay_oracle();
  Rng rng(20260808);
  int checked = 0;
  for (int i = 0; i < 10; ++i) {
    const fuzz::FuzzCase c = oracle.generate(rng);
    const fuzz::CheckOutcome outcome = oracle.check(c, Budget());
    EXPECT_NE(outcome.kind, fuzz::CheckOutcome::Kind::Fail) << outcome.message;
    if (outcome.kind == fuzz::CheckOutcome::Kind::Pass) ++checked;
  }
  EXPECT_GT(checked, 0) << "the seeded streams must exercise the pass path";
}

}  // namespace
}  // namespace mph::serve
