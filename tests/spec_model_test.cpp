// Tests of the symbolic system description (src/fts/spec_model.hpp): the
// FtsSpec::build semantics at its edges — modular wrap at the exact span,
// negative adds, src≠var copies, sequential effect application, single-point
// domains — each cross-checked against explicit exploration of the built
// system, plus the dining/ring symbolic families and the budget-explicit
// proof rules those systems feed.
#include <gtest/gtest.h>

#include <set>

#include "src/fts/fts.hpp"
#include "src/fts/proof_rules.hpp"
#include "src/fts/spec_model.hpp"

namespace mph::fts {
namespace {

/// All reachable valuations of a spec, via explicit exploration.
std::set<Valuation> reachable(const FtsSpec& spec) {
  const ExploreResult ex = explore(spec.build(), Budget().with_state_cap(10000));
  EXPECT_EQ(ex.outcome, Outcome::Complete);
  std::set<Valuation> states;
  for (const auto& node : ex.graph.nodes) states.insert(node.valuation);
  return states;
}

TEST(SpecModel, WrapAtExactSpanIsIdentity) {
  // x ∈ [0, 2], x += 3: the add equals the span, so every step is the
  // identity and the initial state is the only reachable one.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 2, 1});
  FtsSpec::Trans t;
  t.name = "tick";
  t.effects.push_back({0, 0, 3});
  spec.transitions.push_back(t);
  EXPECT_EQ(reachable(spec), (std::set<Valuation>{{1}}));
}

TEST(SpecModel, NegativeAddWrapsBelowTheDomain) {
  // x ∈ [0, 3] init 0, x -= 1: 0 wraps to 3, then walks back down — the
  // whole domain is reachable.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 3, 0});
  FtsSpec::Trans t;
  t.name = "dec";
  t.effects.push_back({0, 0, -1});
  spec.transitions.push_back(t);
  EXPECT_EQ(reachable(spec), (std::set<Valuation>{{0}, {1}, {2}, {3}}));
  EXPECT_EQ(wrap_into(-1, 0, 3), 3);
  EXPECT_EQ(wrap_into(-5, 0, 3), 3);
}

TEST(SpecModel, CrossVariableCopy) {
  // y := x + 1 with x fixed: y jumps to x+1 and stays.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 4, 2});
  spec.vars.push_back({"y", 0, 4, 0});
  FtsSpec::Trans t;
  t.name = "copy";
  t.effects.push_back({1, 0, 1});  // y = x + 1
  spec.transitions.push_back(t);
  EXPECT_EQ(reachable(spec), (std::set<Valuation>{{2, 0}, {2, 3}}));
}

TEST(SpecModel, EffectsApplySequentially) {
  // x += 1 then y := x: y must observe the *updated* x, not the pre-state.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 3, 0});
  spec.vars.push_back({"y", 0, 3, 0});
  FtsSpec::Trans t;
  t.name = "chain";
  t.guard.push_back({0, 0, 1});    // x <= 1 keeps it finite and wrap-free
  t.effects.push_back({0, 0, 1});  // x += 1
  t.effects.push_back({1, 0, 0});  // y = x
  spec.transitions.push_back(t);
  EXPECT_EQ(reachable(spec), (std::set<Valuation>{{0, 0}, {1, 1}, {2, 2}}));
}

TEST(SpecModel, SinglePointDomainAbsorbsEveryAdd) {
  FtsSpec spec;
  spec.vars.push_back({"x", 2, 2, 2});
  FtsSpec::Trans t;
  t.name = "spin";
  t.effects.push_back({0, 0, 5});
  spec.transitions.push_back(t);
  EXPECT_EQ(reachable(spec), (std::set<Valuation>{{2}}));
  EXPECT_EQ(wrap_into(7, 2, 2), 2);
}

TEST(SpecModel, GuardOperatorsMatchTheirSemantics) {
  // One var, three self-loop transitions guarded x<=1, x>=2, x==1; explore
  // enabledness at each reachable state.
  FtsSpec spec;
  spec.vars.push_back({"x", 0, 2, 0});
  FtsSpec::Trans inc;
  inc.name = "inc";
  inc.guard.push_back({0, 0, 1});  // x <= 1
  inc.effects.push_back({0, 0, 1});
  spec.transitions.push_back(inc);
  const Fts sys = spec.build();
  EXPECT_TRUE(sys.enabled(0, {0}));
  EXPECT_TRUE(sys.enabled(0, {1}));
  EXPECT_FALSE(sys.enabled(0, {2}));
  EXPECT_EQ(sys.apply(0, {1}), (Valuation{2}));
}

TEST(SpecModel, AtomsExposeDomainEndpoints) {
  FtsSpec spec;
  spec.vars.push_back({"x", 1, 3, 2});
  const Fts sys = spec.build();
  const AtomMap atoms = spec.atoms();
  ASSERT_TRUE(atoms.count("xhi"));
  ASSERT_TRUE(atoms.count("xlo"));
  EXPECT_FALSE(atoms.at("xlo")(sys, {2}, -1));
  EXPECT_TRUE(atoms.at("xlo")(sys, {1}, -1));
  EXPECT_TRUE(atoms.at("xhi")(sys, {3}, -1));
}

TEST(SpecModel, DiningFamilyShape) {
  const FtsSpec spec = symbolic_dining(3);
  // 3 philosophers + 3 forks + the alarm latch.
  EXPECT_EQ(spec.vars.size(), 7u);
  // 3 transitions per philosopher + escalate.
  EXPECT_EQ(spec.transitions.size(), 10u);
  // The classic deadlock (everyone holds the left fork) is reachable, so
  // the system has a stuttering state but stays well-defined.
  const auto states = reachable(spec);
  EXPECT_FALSE(states.empty());
  for (const auto& v : states) EXPECT_EQ(v.back(), 0) << "alarm must stay 0";
}

TEST(SpecModel, RingFamilyConservesTheToken) {
  const FtsSpec spec = symbolic_ring(4);
  for (const auto& v : reachable(spec)) {
    int tokens = 0;
    for (std::size_t i = 0; i < 4; ++i) tokens += v[i];
    EXPECT_EQ(tokens, 1) << "exactly one token circulates";
  }
}

TEST(ProofRules, BudgetExhaustionIsExplicitNotThrown) {
  // Satellite of the absint PR: the proof rules take a Budget and report
  // exhaustion as an explicit unknown RuleResult instead of throwing.
  const FtsSpec spec = symbolic_dining(3);
  const Fts sys = spec.build();
  const Assertion alarm_zero = [](const Valuation& v) { return v.back() == 0; };
  const RuleResult ok = verify_invariance(sys, alarm_zero);
  EXPECT_TRUE(ok.proved);
  EXPECT_EQ(ok.outcome, Outcome::Complete);

  const RuleResult starved =
      verify_invariance(sys, alarm_zero, Budget().with_state_cap(2));
  EXPECT_FALSE(starved.proved);
  EXPECT_NE(starved.outcome, Outcome::Complete);
  EXPECT_FALSE(starved.witness_state.has_value());
  EXPECT_NE(starved.failed_premise.find("exhausted"), std::string::npos);
}

}  // namespace
}  // namespace mph::fts
