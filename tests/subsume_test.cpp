// The subsumption lint (src/analysis/subsume.hpp): three-valued language
// implication between LTL requirements via the Safra-free Büchi pipeline,
// and the MPH-S011/S012/S013 diagnostics it feeds. Every verdict is
// budget-governed — exhaustion yields Unknown and a note, never a guess.
#include <gtest/gtest.h>

#include "src/analysis/diagnostics.hpp"
#include "src/analysis/subsume.hpp"
#include "src/ltl/ast.hpp"

namespace mph {
namespace {

using analysis::Implication;
using analysis::SubsumeOptions;
using ltl::parse_formula;

// ------------------------------------------------------------ implies() --

TEST(Implies, DecidesTextbookEntailments) {
  EXPECT_EQ(analysis::implies(parse_formula("G p"), parse_formula("F p")),
            Implication::Implies);
  EXPECT_EQ(analysis::implies(parse_formula("F p"), parse_formula("G p")),
            Implication::NotImplies);
  EXPECT_EQ(analysis::implies(parse_formula("p U q"), parse_formula("F q")),
            Implication::Implies);
  EXPECT_EQ(analysis::implies(parse_formula("G F p"), parse_formula("F p")),
            Implication::Implies);
}

TEST(Implies, EquivalentFormulasImplyBothWays) {
  const auto a = parse_formula("G (p & q)");
  const auto b = parse_formula("G (q & p)");
  EXPECT_EQ(analysis::implies(a, b), Implication::Implies);
  EXPECT_EQ(analysis::implies(b, a), Implication::Implies);
}

TEST(Implies, ExhaustedBudgetRefusesDeterministically) {
  SubsumeOptions tight;
  tight.budget = Budget().with_state_cap(1);
  // Refusal is a verdict, not a crash — and re-asking must refuse the same
  // way (the memoized three-valued answers in mph-serve rely on this).
  for (int round = 0; round < 2; ++round)
    EXPECT_EQ(analysis::implies(parse_formula("G p"), parse_formula("G (p & q)"), tight),
              Implication::Unknown);
}

TEST(Implies, OversizedAlphabetIsRefusedNotGuessed) {
  SubsumeOptions narrow;
  narrow.max_atoms = 2;
  EXPECT_EQ(analysis::implies(parse_formula("G (a & b & c)"), parse_formula("G a"),
                              narrow),
            Implication::Unknown);
}

// -------------------------------------------------------- lint_subsume() --

TEST(LintSubsume, RedundantRequirementFiresS011) {
  analysis::DiagnosticEngine out;
  SubsumeOptions options;
  const auto result = analysis::lint_subsume(
      {parse_formula("G p"), parse_formula("G (p & q)")}, out, options);
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_EQ(result.pairs[0].stronger, 1u) << "G (p & q) is the stronger requirement";
  EXPECT_EQ(result.pairs[0].weaker, 0u);
  EXPECT_FALSE(result.pairs[0].equivalent);
  EXPECT_TRUE(out.has_code("MPH-S011"));
  EXPECT_FALSE(out.has_errors()) << "redundancy is a warning, not an error";
  EXPECT_EQ(result.unknown_pairs, 0u);
}

TEST(LintSubsume, SameLanguageFiresS012) {
  analysis::DiagnosticEngine out;
  const auto result = analysis::lint_subsume(
      {parse_formula("G (p & q)"), parse_formula("G (q & p)")}, out, {});
  ASSERT_EQ(result.pairs.size(), 1u);
  EXPECT_TRUE(result.pairs[0].equivalent);
  EXPECT_TRUE(out.has_code("MPH-S012"));
  EXPECT_FALSE(out.has_code("MPH-S011"))
      << "an equivalence must not double-report as plain redundancy";
}

TEST(LintSubsume, IndependentRequirementsStaySilent) {
  analysis::DiagnosticEngine out;
  const auto result =
      analysis::lint_subsume({parse_formula("G p"), parse_formula("F q")}, out, {});
  EXPECT_TRUE(result.pairs.empty());
  EXPECT_EQ(result.unknown_pairs, 0u);
  EXPECT_EQ(out.diagnostics().size(), 0u) << "no wolf-crying on independent specs";
  EXPECT_EQ(result.checked_pairs, 2u) << "both ordered directions were examined";
}

TEST(LintSubsume, ExhaustionIsANoteNeverAVerdict) {
  analysis::DiagnosticEngine out;
  SubsumeOptions tight;
  tight.budget = Budget().with_state_cap(1);
  const auto result = analysis::lint_subsume(
      {parse_formula("G p"), parse_formula("G (p & q)")}, out, tight);
  EXPECT_TRUE(result.pairs.empty()) << "an undecided pair must not become a claim";
  EXPECT_GT(result.unknown_pairs, 0u);
  EXPECT_TRUE(out.has_code("MPH-S013"));
  EXPECT_FALSE(out.has_code("MPH-S011"));
}

}  // namespace
}  // namespace mph
