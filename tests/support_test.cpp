#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/support/check.hpp"
#include "src/support/flat_hash.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

namespace mph {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.chance(1, 1));
    EXPECT_FALSE(r.chance(0, 1));
  }
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MPH_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(MPH_REQUIRE(true, ""));
}

TEST(Check, AssertThrowsLogicError) {
  EXPECT_THROW(MPH_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(MPH_ASSERT(true));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"class", "witness"});
  t.add_row({"safety", "a^ω + a⁺b^ω"});
  t.add_row({"guarantee", "a⁺b*·Σ^ω"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| class"), std::string::npos);
  EXPECT_NE(s.find("| safety"), std::string::npos);
  EXPECT_NE(s.find("guarantee"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(FlatInterner, DenseIndicesInInsertionOrder) {
  FlatInterner<std::uint64_t, IntHash> interner;
  EXPECT_EQ(interner.intern(10), (std::pair<std::size_t, bool>{0, true}));
  EXPECT_EQ(interner.intern(20), (std::pair<std::size_t, bool>{1, true}));
  EXPECT_EQ(interner.intern(10), (std::pair<std::size_t, bool>{0, false}));
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner[0], 10u);
  EXPECT_EQ(interner[1], 20u);
  EXPECT_TRUE(interner.contains(20));
  EXPECT_FALSE(interner.contains(30));
}

TEST(FlatInterner, SurvivesGrowthAgainstReferenceMap) {
  FlatInterner<std::uint64_t, IntHash> interner;
  std::map<std::uint64_t, std::size_t> reference;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    std::uint64_t key = rng.below(4096);  // plenty of duplicates
    auto [idx, inserted] = interner.intern(key);
    auto [it, fresh] = reference.try_emplace(key, idx);
    EXPECT_EQ(inserted, fresh);
    EXPECT_EQ(idx, it->second);
    EXPECT_EQ(interner[idx], key);
  }
  EXPECT_EQ(interner.size(), reference.size());
}

TEST(FlatInterner, VectorKeys) {
  FlatInterner<std::vector<int>, IntRangeHash> interner;
  auto [a, a_new] = interner.intern({1, 2, 3});
  auto [b, b_new] = interner.intern({1, 2, 4});
  auto [c, c_new] = interner.intern({1, 2, 3});
  EXPECT_TRUE(a_new);
  EXPECT_TRUE(b_new);
  EXPECT_FALSE(c_new);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.keys().size(), 2u);
}

TEST(FlatInterner, ReserveKeepsContents) {
  FlatInterner<std::uint64_t, IntHash> interner;
  for (std::uint64_t k = 0; k < 100; ++k) interner.intern(k * 7);
  interner.reserve(100000);
  for (std::uint64_t k = 0; k < 100; ++k) {
    auto [idx, inserted] = interner.intern(k * 7);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(idx, k);
  }
}

TEST(FlatHash, MixAndCombineSpreadBits) {
  // Sequential keys must not collide and must differ in high bits too.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(hash_mix(i) >> 32);
  EXPECT_GT(seen.size(), 990u);
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));  // order matters
  EXPECT_NE(hash_range(std::vector<int>{1, 2}), hash_range(std::vector<int>{2, 1}));
}

}  // namespace
}  // namespace mph
