#include <gtest/gtest.h>

#include <set>

#include "src/support/check.hpp"
#include "src/support/rng.hpp"
#include "src/support/table.hpp"

namespace mph {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, BelowCoversRange) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, BetweenInclusive) {
  Rng r(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = r.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    lo_seen |= (v == -2);
    hi_seen |= (v == 2);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, BelowZeroThrows) {
  Rng r(1);
  EXPECT_THROW(r.below(0), std::invalid_argument);
}

TEST(Rng, ChanceExtremes) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(r.chance(1, 1));
    EXPECT_FALSE(r.chance(0, 1));
  }
}

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(MPH_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(MPH_REQUIRE(true, ""));
}

TEST(Check, AssertThrowsLogicError) {
  EXPECT_THROW(MPH_ASSERT(false), std::logic_error);
  EXPECT_NO_THROW(MPH_ASSERT(true));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"class", "witness"});
  t.add_row({"safety", "a^ω + a⁺b^ω"});
  t.add_row({"guarantee", "a⁺b*·Σ^ω"});
  std::string s = t.to_string();
  EXPECT_NE(s.find("| class"), std::string::npos);
  EXPECT_NE(s.find("| safety"), std::string::npos);
  EXPECT_NE(s.find("guarantee"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

}  // namespace
}  // namespace mph
