// The topological view (§3): metric properties, closure = safety closure,
// the G_δ example, and the class↔topology correspondences.
#include <gtest/gtest.h>

#include <cmath>

#include "src/lang/dfa_ops.hpp"
#include "src/lang/regex.hpp"
#include "src/omega/emptiness.hpp"
#include "src/omega/operators.hpp"
#include "src/topology/topology.hpp"

namespace mph::topology {
namespace {

using lang::compile_regex;
using omega::DetOmega;
using omega::Lasso;
using omega::parse_lasso;

lang::Alphabet ab() { return lang::Alphabet::plain({"a", "b"}); }

TEST(Topology, DistanceBasics) {
  auto sigma = ab();
  Lasso aw = parse_lasso("(a)", sigma);
  Lasso bw = parse_lasso("(b)", sigma);
  EXPECT_EQ(distance(aw, aw), 0.0);
  EXPECT_EQ(distance(aw, bw), 1.0);  // differ at position 0: 2^0
  // a^n b^ω vs a^{2n} b^ω: differ first at position n → 2^{-n} (§3 example).
  for (int n = 1; n <= 5; ++n) {
    Lasso l1{lang::parse_word(std::string(n, 'a'), sigma), lang::parse_word("b", sigma)};
    Lasso l2{lang::parse_word(std::string(2 * n, 'a'), sigma), lang::parse_word("b", sigma)};
    EXPECT_DOUBLE_EQ(distance(l1, l2), std::ldexp(1.0, -n));
  }
}

TEST(Topology, DistanceIsSymmetricAndUltrametric) {
  auto sigma = ab();
  auto ls = omega::enumerate_lassos(sigma, 2, 2);
  for (std::size_t i = 0; i < ls.size(); i += 7)
    for (std::size_t j = 0; j < ls.size(); j += 11) {
      double dij = distance(ls[i], ls[j]);
      EXPECT_EQ(dij, distance(ls[j], ls[i]));
      for (std::size_t k = 0; k < ls.size(); k += 13) {
        // Ultrametric inequality: d(x,z) ≤ max(d(x,y), d(y,z)).
        EXPECT_LE(distance(ls[i], ls[k]),
                  std::max(dij, distance(ls[j], ls[k])) + 1e-12);
      }
    }
}

TEST(Topology, ClosureAddsLimitPoints) {
  // cl(a⁺b^ω) = a⁺b^ω + a^ω (§3's example).
  auto sigma = ab();
  DetOmega m = intersection(omega::op_a(compile_regex("a+b*", sigma)),
                            omega::op_e(compile_regex("a+b", sigma)));  // a⁺b^ω
  EXPECT_FALSE(m.accepts_text("(a)"));
  DetOmega cl = closure(m);
  EXPECT_TRUE(cl.accepts_text("(a)"));  // the limit point a^ω
  EXPECT_TRUE(cl.accepts_text("a(b)"));
  EXPECT_FALSE(cl.accepts_text("(b)"));
  EXPECT_FALSE(cl.accepts_text("ab(a)"));
}

TEST(Topology, LimitPointViaConvergingSequence) {
  // b^ω, ab^ω, aab^ω, … converges to a^ω (§3): a^ω is a limit point of
  // a*b^ω even though it is not in the set.
  auto sigma = ab();
  DetOmega m = intersection(omega::op_a(compile_regex("a*b*", sigma)),
                            omega::op_e(compile_regex("a*b", sigma)));  // a*b^ω
  Lasso limit = parse_lasso("(a)", sigma);
  EXPECT_FALSE(m.accepts(limit));
  EXPECT_TRUE(is_limit_point(m, limit));
  // Distances to the sequence members shrink to 0.
  double prev = 2.0;
  for (int n = 0; n < 6; ++n) {
    Lasso member{lang::parse_word(std::string(n, 'a'), sigma), lang::parse_word("b", sigma)};
    ASSERT_TRUE(m.accepts(member));
    double d = distance(limit, member);
    EXPECT_LT(d, prev);
    prev = d;
  }
}

TEST(Topology, ClosedOpenCorrespondence) {
  auto sigma = ab();
  EXPECT_TRUE(is_closed(omega::op_a(compile_regex("a+b*", sigma))));
  EXPECT_FALSE(is_open(omega::op_a(compile_regex("a+b*", sigma))));
  EXPECT_TRUE(is_open(omega::op_e(compile_regex("(a|b)*b", sigma))));
  EXPECT_FALSE(is_closed(omega::op_e(compile_regex("(a|b)*b", sigma))));
  // a·Σ^ω is clopen.
  EXPECT_TRUE(is_clopen(omega::op_a(compile_regex("a(a|b)*", sigma))));
}

TEST(Topology, GDeltaExample) {
  // §3: G_k = (a*b)^k·Σ^ω are open; their intersection (a*b)^ω is G_δ but
  // neither closed nor open.
  auto sigma = ab();
  DetOmega h = omega::op_r(compile_regex("(a*b)+", sigma));
  EXPECT_TRUE(is_g_delta(h));
  EXPECT_FALSE(is_closed(h));
  EXPECT_FALSE(is_open(h));
  EXPECT_FALSE(is_f_sigma(h));
  // Finite intersections of the opens stay open.
  DetOmega g1 = omega::op_e(compile_regex("a*b", sigma));
  DetOmega g2 = omega::op_e(compile_regex("a*ba*b", sigma));
  EXPECT_TRUE(is_open(intersection(g1, g2)));
  // And each G_k contains H.
  EXPECT_TRUE(omega::contains(g1, h));
  EXPECT_TRUE(omega::contains(g2, h));
}

TEST(Topology, FSigmaExample) {
  auto sigma = ab();
  DetOmega p = omega::op_p(compile_regex("(a|b)*a", sigma));  // Σ*a^ω
  EXPECT_TRUE(is_f_sigma(p));
  EXPECT_FALSE(is_g_delta(p));
}

TEST(Topology, DensenessIsLiveness) {
  auto sigma = ab();
  EXPECT_TRUE(is_dense(omega::op_r(compile_regex("(a*b)+", sigma))));
  EXPECT_FALSE(is_dense(omega::op_a(compile_regex("a+b*", sigma))));
  // The whole space is dense and clopen.
  DetOmega all = omega::op_a(compile_regex("(a|b)+", sigma));
  EXPECT_TRUE(is_dense(all));
  EXPECT_TRUE(is_clopen(all));
}

TEST(Topology, InteriorIsDualToClosure) {
  auto sigma = ab();
  DetOmega m = omega::op_r(compile_regex("(a*b)+", sigma));
  // interior ⊆ Π ⊆ closure; interior open, closure closed.
  DetOmega in = interior(m);
  DetOmega cl = closure(m);
  EXPECT_TRUE(omega::contains(m, in));
  EXPECT_TRUE(omega::contains(cl, m));
  EXPECT_TRUE(is_open(in));
  EXPECT_TRUE(is_closed(cl));
  // For (a*b)^ω the interior is empty and the closure is everything.
  EXPECT_TRUE(omega::is_empty(in));
  EXPECT_TRUE(omega::is_liveness(cl));
  EXPECT_TRUE(is_clopen(closure(in)));
}

}  // namespace
}  // namespace mph::topology
