// The vacuity subsystem end to end: the polarity walker (flips under ¬ and
// the left side of ->, mixed under <->, past operators covered), the
// MPH-Y002 antecedent fast path against models that do and do not exercise
// the antecedent, Beer-style mutation verdicts with named witnessing
// mutations, interesting-witness replay, class-aware dispatch routing
// (safety mutants stay off the ω-product path), transition coverage, and
// budget exhaustion surfacing as Unknown — never as "non-vacuous".
#include <gtest/gtest.h>

#include "src/analysis/coverage.hpp"
#include "src/analysis/vacuity.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/eval.hpp"
#include "src/ltl/polarity.hpp"

namespace mph {
namespace {

using analysis::RequirementVacuity;
using ltl::Occurrence;
using ltl::parse_formula;
using ltl::Polarity;

/// The polarity of the unique occurrence printing as `text` (asserts it
/// exists and is unambiguous).
Polarity polarity_of(const std::vector<Occurrence>& occs, const std::string& text) {
  const Occurrence* found = nullptr;
  for (const auto& o : occs)
    if (o.sub.to_string() == text) {
      EXPECT_EQ(found, nullptr) << "ambiguous occurrence " << text;
      found = &o;
    }
  EXPECT_NE(found, nullptr) << "no occurrence " << text;
  return found ? found->polarity : Polarity::Mixed;
}

TEST(PolarityWalker, UntilOperandsArePositive) {
  const auto occs = ltl::occurrences(parse_formula("p U q"));
  ASSERT_EQ(occs.size(), 2u);
  EXPECT_EQ(polarity_of(occs, "p"), Polarity::Positive);
  EXPECT_EQ(polarity_of(occs, "q"), Polarity::Positive);
}

TEST(PolarityWalker, NegationFlipsAndDoubleNegationRestores) {
  const auto occs = ltl::occurrences(parse_formula("!(p U q)"));
  EXPECT_EQ(polarity_of(occs, "p U q"), Polarity::Negative);
  EXPECT_EQ(polarity_of(occs, "p"), Polarity::Negative);
  EXPECT_EQ(polarity_of(occs, "q"), Polarity::Negative);
  const auto twice = ltl::occurrences(parse_formula("!!p"));
  EXPECT_EQ(polarity_of(twice, "p"), Polarity::Positive);
}

TEST(PolarityWalker, ImpliesIsAntitoneOnTheLeft) {
  const auto occs = ltl::occurrences(parse_formula("G(p -> q)"));
  EXPECT_EQ(polarity_of(occs, "p -> q"), Polarity::Positive);
  EXPECT_EQ(polarity_of(occs, "p"), Polarity::Negative);
  EXPECT_EQ(polarity_of(occs, "q"), Polarity::Positive);
}

TEST(PolarityWalker, PastOperatorsPreservePolarity) {
  const auto occs = ltl::occurrences(parse_formula("H(p -> O q)"));
  EXPECT_EQ(polarity_of(occs, "p"), Polarity::Negative);
  EXPECT_EQ(polarity_of(occs, "O q"), Polarity::Positive);
  EXPECT_EQ(polarity_of(occs, "q"), Polarity::Positive);
  const auto since = ltl::occurrences(parse_formula("p S !q"));
  EXPECT_EQ(polarity_of(since, "p"), Polarity::Positive);
  EXPECT_EQ(polarity_of(since, "q"), Polarity::Negative);
}

TEST(PolarityWalker, IffMakesEverythingBeneathMixed) {
  const auto occs = ltl::occurrences(parse_formula("(p & r) <-> !q"));
  EXPECT_EQ(polarity_of(occs, "p & r"), Polarity::Mixed);
  EXPECT_EQ(polarity_of(occs, "p"), Polarity::Mixed);
  EXPECT_EQ(polarity_of(occs, "q"), Polarity::Mixed);
}

TEST(PolarityWalker, ConstantOccurrencesAreOmitted) {
  for (const auto& o : ltl::occurrences(parse_formula("G(true -> p)")))
    EXPECT_NE(o.sub.to_string(), "true");
}

TEST(PolarityWalker, PreorderPathsAddressTheirNodes) {
  const ltl::Formula f = parse_formula("G(p -> q)");
  const auto occs = ltl::occurrences(f);
  ASSERT_EQ(occs.size(), 3u);
  EXPECT_EQ(occs[0].sub.to_string(), "p -> q");
  EXPECT_EQ(occs[1].sub.to_string(), "p");
  EXPECT_EQ(occs[2].sub.to_string(), "q");
  EXPECT_EQ(occs[1].path, (std::vector<std::size_t>{0, 0}));
  // Each path addresses exactly the subformula it was reported with.
  for (const auto& o : occs) {
    const ltl::Formula back = ltl::replace_at(f, o.path, o.sub);
    EXPECT_EQ(back.to_string(), f.to_string());
  }
}

TEST(PolarityWalker, ReplaceAtRewritesOneOccurrence) {
  const ltl::Formula f = parse_formula("G(p -> q)");
  const std::size_t path[] = {0, 0};
  EXPECT_EQ(ltl::replace_at(f, path, ltl::f_false()).to_string(),
            parse_formula("G(false -> q)").to_string());
}

TEST(PolarityWalker, StrengtheningsFollowPolarity) {
  const ltl::Formula f = parse_formula("G(p -> q)");
  const auto occs = ltl::occurrences(f);
  for (const auto& o : occs) {
    const auto muts = ltl::strengthenings(f, o);
    ASSERT_EQ(muts.size(), 1u);
    // Negative occurrence -> true, positive -> false; either way the mutant
    // entails the original on every lasso over {p, q}.
    const std::string expect = o.polarity == Polarity::Negative ? "true" : "false";
    const ltl::Formula back = ltl::replace_at(f, o.path, parse_formula(expect));
    EXPECT_EQ(muts[0].to_string(), back.to_string());
  }
  const auto mixed = ltl::occurrences(parse_formula("p <-> q"));
  EXPECT_EQ(ltl::strengthenings(parse_formula("p <-> q"), mixed[0]).size(), 2u);
}

TEST(AntecedentFastPath, UnreachableVsExercised) {
  const ltl::Formula req = parse_formula("G(c1 -> O t1)");
  const auto mutex = fts::programs::trivial_mutex();
  const auto unreachable =
      analysis::antecedent_exercised(mutex.system, req, mutex.atoms, Budget{});
  ASSERT_TRUE(unreachable.has_value());
  ASSERT_TRUE(unreachable->complete());
  EXPECT_FALSE(*unreachable->value);  // trivial-mutex never reaches critical

  const auto peterson = fts::programs::peterson();
  const auto exercised =
      analysis::antecedent_exercised(peterson.system, req, peterson.atoms, Budget{});
  ASSERT_TRUE(exercised.has_value());
  ASSERT_TRUE(exercised->complete());
  EXPECT_TRUE(*exercised->value);
}

TEST(AntecedentFastPath, OnlyImplicationUnderAlwaysQualifies) {
  const auto prog = fts::programs::peterson();
  EXPECT_FALSE(analysis::antecedent_exercised(prog.system, parse_formula("F c1"),
                                              prog.atoms, Budget{}));
  // A temporal antecedent is outside the fast path's fragment too.
  EXPECT_FALSE(analysis::antecedent_exercised(prog.system, parse_formula("G(F t1 -> c1)"),
                                              prog.atoms, Budget{}));
}

TEST(Vacuity, UnreachableAntecedentFiresY002WithoutMutation) {
  const auto prog = fts::programs::trivial_mutex();
  analysis::DiagnosticEngine diag;
  const auto vr = analysis::analyze_vacuity(prog.system, {parse_formula("G(c1 -> O t1)")},
                                            prog.atoms, diag);
  const auto& rv = vr.requirements[0];
  EXPECT_EQ(rv.verdict, RequirementVacuity::Verdict::Vacuous);
  EXPECT_TRUE(rv.antecedent_failure);
  EXPECT_TRUE(rv.mutants.empty());  // decided by labeling alone
  EXPECT_TRUE(diag.has_code("MPH-Y002"));
  EXPECT_FALSE(diag.has_code("MPH-Y001"));
}

TEST(Vacuity, SameSpecIsNonVacuousWhereTheAntecedentIsExercised) {
  const auto prog = fts::programs::peterson();
  analysis::DiagnosticEngine diag;
  const auto vr = analysis::analyze_vacuity(prog.system, {parse_formula("G(c1 -> O t1)")},
                                            prog.atoms, diag);
  const auto& rv = vr.requirements[0];
  EXPECT_TRUE(rv.original.holds);
  EXPECT_FALSE(rv.antecedent_failure);
  EXPECT_FALSE(diag.has_code("MPH-Y002"));
  EXPECT_EQ(rv.verdict, RequirementVacuity::Verdict::NonVacuous);
}

TEST(Vacuity, VacuousPassNamesTheWitnessingMutation) {
  const auto prog = fts::programs::trivial_mutex();
  analysis::DiagnosticEngine diag;
  const auto vr = analysis::analyze_vacuity(prog.system, {parse_formula("G !(c1 & c2)")},
                                            prog.atoms, diag);
  EXPECT_EQ(vr.requirements[0].verdict, RequirementVacuity::Verdict::Vacuous);
  ASSERT_TRUE(diag.has_code("MPH-Y001"));
  bool named = false;
  for (const auto& d : diag.diagnostics())
    if (d.code == "MPH-Y001" && d.witness.find("c1 <- true") != std::string::npos)
      named = true;
  EXPECT_TRUE(named) << "no MPH-Y001 names the c1 <- true mutation";
}

TEST(Vacuity, InterestingWitnessReplaysUnderTheLassoEvaluator) {
  const auto prog = fts::programs::peterson();
  const ltl::Formula req = parse_formula("G(t1 -> F c1)");
  analysis::DiagnosticEngine diag;
  const auto vr = analysis::analyze_vacuity(prog.system, {req}, prog.atoms, diag);
  const auto& rv = vr.requirements[0];
  EXPECT_EQ(rv.verdict, RequirementVacuity::Verdict::NonVacuous);
  EXPECT_TRUE(diag.has_code("MPH-Y003"));
  ASSERT_TRUE(rv.witness.has_value());
  ASSERT_FALSE(rv.witness->loop.empty());
  // Replay: the witness must satisfy the requirement it is a witness for.
  const auto names = req.atoms();
  const lang::Alphabet sigma = lang::Alphabet::of_props(names);
  auto symbol_of = [&](const fts::Valuation& v) {
    lang::Symbol s = 0;
    for (std::size_t i = 0; i < names.size(); ++i)
      if (prog.atoms.at(names[i])(prog.system, v, fts::StateGraph::kNone))
        s |= lang::Symbol{1} << i;
    return s;
  };
  omega::Lasso word;
  for (const auto& v : rv.witness->prefix) word.prefix.push_back(symbol_of(v));
  for (const auto& v : rv.witness->loop) word.loop.push_back(symbol_of(v));
  EXPECT_TRUE(ltl::evaluates(req, word, sigma));
}

TEST(Vacuity, BudgetExhaustionIsUnknownNeverNonVacuous) {
  const auto prog = fts::programs::peterson();
  analysis::VacuityOptions opts;
  opts.check.budget.with_state_cap(3);  // below peterson's 15 reachable states
  analysis::DiagnosticEngine diag;
  const auto vr = analysis::analyze_vacuity(prog.system, {parse_formula("G(t1 -> F c1)")},
                                            prog.atoms, diag, opts);
  EXPECT_EQ(vr.requirements[0].verdict, RequirementVacuity::Verdict::Unknown);
  EXPECT_TRUE(diag.has_code("MPH-Y005"));
  EXPECT_FALSE(diag.has_code("MPH-Y003"));
}

TEST(Dispatch, SafetyMutantsStayOffTheOmegaProduct) {
  const auto prog = fts::programs::trivial_mutex();
  analysis::DiagnosticEngine diag;
  analysis::VacuityOptions dispatched;  // class_dispatch defaults on
  const auto with =
      analysis::analyze_vacuity(prog.system, {parse_formula("G !(c1 & c2)")}, prog.atoms,
                                diag, dispatched);
  // Mutating either atom keeps a syntactically-safety formula: both routed
  // through the closed-prefix scan. The whole-formula / conjunction mutants
  // are constant and never touch an engine.
  EXPECT_EQ(with.stats.safety_prefix, 2u);
  EXPECT_EQ(with.stats.constant, 2u);
  EXPECT_EQ(with.stats.nested_dfs, 0u);
  EXPECT_EQ(with.stats.scc, 0u);

  analysis::VacuityOptions full = dispatched;
  full.class_dispatch = false;
  analysis::DiagnosticEngine diag2;
  const auto without =
      analysis::analyze_vacuity(prog.system, {parse_formula("G !(c1 & c2)")}, prog.atoms,
                                diag2, full);
  EXPECT_EQ(without.stats.safety_prefix, 0u);
  EXPECT_EQ(without.stats.nested_dfs + without.stats.scc, 2u);
  // Same verdicts either way.
  EXPECT_EQ(with.requirements[0].verdict, without.requirements[0].verdict);
  ASSERT_EQ(with.requirements[0].mutants.size(), without.requirements[0].mutants.size());
  for (std::size_t i = 0; i < with.requirements[0].mutants.size(); ++i)
    EXPECT_EQ(with.requirements[0].mutants[i].holds,
              without.requirements[0].mutants[i].holds);
}

TEST(Dispatch, GuaranteeSpecsTakeTheDualEngine) {
  const auto prog = fts::programs::peterson();
  const ltl::Formula spec = parse_formula("F c1");
  fts::CheckOptions dispatched;
  dispatched.class_dispatch = true;
  const auto fast = fts::check(prog.system, spec, prog.atoms, dispatched);
  EXPECT_EQ(fast.stats.engine, fts::CheckEngine::GuaranteeDual);
  const auto slow = fts::check(prog.system, spec, prog.atoms, fts::CheckOptions{});
  EXPECT_NE(slow.stats.engine, fts::CheckEngine::GuaranteeDual);
  EXPECT_NE(slow.stats.engine, fts::CheckEngine::SafetyPrefix);
  ASSERT_TRUE(is_complete(fast.outcome));
  ASSERT_TRUE(is_complete(slow.outcome));
  EXPECT_EQ(fast.holds, slow.holds);
}

TEST(Coverage, VacuousSpecCoversNoTransition) {
  const auto prog = fts::programs::trivial_mutex();
  analysis::DiagnosticEngine diag;
  const auto cr = analysis::analyze_coverage(prog.system, {parse_formula("G !(c1 & c2)")},
                                             prog.atoms, diag);
  EXPECT_EQ(cr.reachable, 2u);  // try1, try2; the enter/exit family is dead
  EXPECT_EQ(cr.covered, 0u);
  EXPECT_EQ(cr.percent_covered, 0.0);
  EXPECT_EQ(diag.count_code("MPH-Y004"), 2u);
}

TEST(Coverage, LivenessSpecCoversTheTransitionsItNeeds) {
  const auto prog = fts::programs::peterson();
  analysis::DiagnosticEngine diag;
  const auto cr = analysis::analyze_coverage(prog.system, {parse_formula("G(t1 -> F c1)")},
                                             prog.atoms, diag);
  EXPECT_TRUE(is_complete(cr.outcome));
  EXPECT_GT(cr.covered, 0u);
  EXPECT_GT(cr.percent_covered, 0.0);
}

TEST(Coverage, BudgetExhaustionAbortsWithY005) {
  const auto prog = fts::programs::peterson();
  analysis::CoverageOptions opts;
  opts.check.budget.with_state_cap(3);
  analysis::DiagnosticEngine diag;
  const auto cr = analysis::analyze_coverage(prog.system, {parse_formula("G(t1 -> F c1)")},
                                             prog.atoms, diag, opts);
  EXPECT_FALSE(is_complete(cr.outcome));
  EXPECT_TRUE(diag.has_code("MPH-Y005"));
  EXPECT_FALSE(diag.has_code("MPH-Y004"));  // nothing may be called uncovered
  EXPECT_TRUE(cr.transitions.empty());
}

}  // namespace
}  // namespace mph
