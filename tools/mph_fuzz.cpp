// mph-fuzz — seedable differential fuzzing of the repo's redundant
// implementations (see docs/FUZZING.md).
//
//   mph-fuzz --iters 500 --seed 1               run every oracle
//   mph-fuzz --oracle fts-engines --iters 50    run one oracle (repeatable)
//   mph-fuzz --list-oracles                     what can be cross-checked
//   mph-fuzz --replay tests/corpus/foo.fuzz     re-check a stored case
//   mph-fuzz --save-case FILE --oracle NAME     write iteration 0's input
//   mph-fuzz --json [--out FILE]                machine-readable report
//
// Exit status: 0 = every oracle agreed (replay: case passes or skips),
// 1 = a discrepancy was found (replay: case fails), 2 = usage or I/O error.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fuzz/generators.hpp"
#include "src/fuzz/runner.hpp"
#include "src/serve/replay_oracle.hpp"
#include "src/support/parse_num.hpp"

namespace {

using namespace mph;

int usage(std::ostream& out, int code) {
  out << "usage: mph-fuzz [options]\n"
         "  --seed N          base seed (default 1); every failure replays from it\n"
         "  --iters N         iterations per oracle (default 100)\n"
         "  --oracle NAME     fuzz only NAME (repeatable; default: all oracles)\n"
         "  --max-failures N  stop an oracle after N failures (default 3)\n"
         "  --no-shrink       report failures without minimizing them\n"
         "  --iter-budget-ms N\n"
         "                    per-iteration wall-clock budget in ms (0 = unlimited);\n"
         "                    exhausted iterations are recorded as MPH-X004, not failures\n"
         "  --iter-budget-states N\n"
         "                    per-iteration state/node cap for the engines under test\n"
         "  --json            machine-readable report\n"
         "  --out FILE        write the report to FILE instead of stdout\n"
         "  --replay FILE     re-check a stored mph-fuzz-case file and exit\n"
         "  --save-case FILE  write one generated case of --oracle to FILE\n"
         "  --case-iter N     which iteration --save-case writes (default 0)\n"
         "  --list-oracles    print the oracle registry\n";
  return code;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

int main(int argc, char** argv) {
  serve::register_serve_oracle();

  fuzz::FuzzOptions options;
  bool json = false, list_oracles = false;
  std::string out_path, replay_path, save_path;
  std::uint64_t case_iter = 0;

  std::vector<std::string> args(argv + 1, argv + argc);
  auto value_of = [&](std::size_t& i) -> std::string {
    if (i + 1 >= args.size()) {
      usage(std::cerr, 2);
      std::exit(2);
    }
    return args[++i];
  };
  // Strict numeric flags: "1e9x", "-5", and "" are usage errors (exit 2),
  // never silent truncations (std::stoull parsed "1e9x" as 1).
  auto num_of = [&](std::size_t& i, const char* flag) -> std::uint64_t {
    const std::string text = value_of(i);
    if (auto v = parse_u64(text)) return *v;
    std::cerr << "mph-fuzz: " << flag << " needs a base-10 unsigned integer, got '"
              << text << "'\n";
    usage(std::cerr, 2);
    std::exit(2);
  };
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a == "--seed") options.seed = num_of(i, "--seed");
    else if (a == "--iters") options.iters = num_of(i, "--iters");
    else if (a == "--oracle") options.oracles.push_back(value_of(i));
    else if (a == "--max-failures") options.max_failures = num_of(i, "--max-failures");
    else if (a == "--no-shrink") options.shrink = false;
    else if (a == "--iter-budget-ms") options.iter_budget_ms = num_of(i, "--iter-budget-ms");
    else if (a == "--iter-budget-states")
      options.iter_budget_states = num_of(i, "--iter-budget-states");
    else if (a == "--json") json = true;
    else if (a == "--out") out_path = value_of(i);
    else if (a == "--replay") replay_path = value_of(i);
    else if (a == "--save-case") save_path = value_of(i);
    else if (a == "--case-iter") case_iter = num_of(i, "--case-iter");
    else if (a == "--list-oracles") list_oracles = true;
    else if (a == "--help" || a == "-h") return usage(std::cout, 0);
    else return usage(std::cerr, 2);
  }

  if (list_oracles) {
    for (const auto& o : fuzz::oracle_registry())
      std::cout << o.name << "\n    " << o.description << "\n";
    return 0;
  }

  try {
    if (!replay_path.empty()) {
      const fuzz::FuzzCase c = fuzz::FuzzCase::parse(read_file(replay_path));
      const fuzz::CheckOutcome outcome = fuzz::replay(c);
      switch (outcome.kind) {
        case fuzz::CheckOutcome::Kind::Pass:
          std::cout << replay_path << ": " << c.oracle << " agrees\n";
          return 0;
        case fuzz::CheckOutcome::Kind::Skip:
          std::cout << replay_path << ": skipped (" << outcome.message << ")\n";
          return 0;
        case fuzz::CheckOutcome::Kind::Budget:
          std::cout << replay_path << ": budget exhausted (" << outcome.message
                    << ") — not a discrepancy\n";
          return 0;
        case fuzz::CheckOutcome::Kind::Fail:
          std::cerr << replay_path << ": FAIL: " << outcome.message << "\n";
          return 1;
      }
    }

    if (!save_path.empty()) {
      if (options.oracles.size() != 1) {
        std::cerr << "--save-case needs exactly one --oracle\n";
        return 2;
      }
      const fuzz::Oracle* oracle = fuzz::find_oracle(options.oracles[0]);
      if (!oracle) {
        std::cerr << "unknown oracle: " << options.oracles[0] << "\n";
        return 2;
      }
      Rng rng(fuzz::iteration_seed(oracle->name, options.seed, case_iter));
      std::ofstream out(save_path);
      if (!out) throw std::runtime_error("cannot write " + save_path);
      out << oracle->generate(rng).to_text();
      std::cout << "wrote " << save_path << "\n";
      return 0;
    }

    analysis::DiagnosticEngine diagnostics;
    const fuzz::FuzzReport report = fuzz::run_fuzz(options, &diagnostics);
    const std::string rendered = json ? report.to_json() : report.to_text();
    if (out_path.empty()) {
      std::cout << rendered;
    } else {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      out << rendered;
    }
    if (!json && !diagnostics.empty()) std::cerr << diagnostics.to_text();
    return report.total_failures() == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "mph-fuzz: " << e.what() << "\n";
    return 2;
  }
}
