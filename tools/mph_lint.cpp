// mph-lint — the static-diagnostics CLI over the repo's IRs.
//
//   mph-lint 'G !(c1 & c2)' 'G(t1 -> F c1)'     lint a property list
//   mph-lint --spec examples/specs/mutex_faulty.spec
//   mph-lint --model peterson                   lint a built-in FTS model
//   mph-lint --models                           lint every built-in model
//   mph-lint --model peterson --check 'G !(c1 & c2)'
//                                               model-check specs, print engine stats
//   mph-lint --json ...                         machine-readable output
//   mph-lint --list-codes | --list-passes       registry introspection
//
// Exit status: 0 = no error-severity diagnostics, 1 = errors found
// (with --werror, warnings too; with --strict-unknown, unknown verdicts
// too), 2 = usage or parse failure. Unknown verdicts never silently map
// to 0 semantics beyond exit status: they are always visible as MPH-V004 /
// MPH-Y005 diagnostics and "unknown" table cells.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/automaton_lint.hpp"
#include "src/analysis/coverage.hpp"
#include "src/analysis/passes.hpp"
#include "src/analysis/vacuity.hpp"
#include "src/fts/checker.hpp"
#include "src/fts/programs.hpp"
#include "src/ltl/hierarchy.hpp"
#include "src/support/parse_num.hpp"
#include "src/support/table.hpp"

namespace {

using namespace mph;

struct ModelEntry {
  const char* name;
  fts::programs::Program (*make)();
};

const ModelEntry kModels[] = {
    {"peterson", [] { return fts::programs::peterson(); }},
    {"trivial-mutex", [] { return fts::programs::trivial_mutex(); }},
    {"semaphore-weak", [] { return fts::programs::semaphore_mutex(3, fts::Fairness::Weak); }},
    {"semaphore-strong",
     [] { return fts::programs::semaphore_mutex(3, fts::Fairness::Strong); }},
    {"producer-consumer", [] { return fts::programs::producer_consumer(3); }},
    {"dining-3", [] { return fts::programs::dining_philosophers(3); }},
};

/// Built-in models plus the parameterized families dining-N (2..12) and
/// ring-N (2..10). Returns nullopt for unknown names; out-of-range family
/// parameters throw std::invalid_argument (reported as a usage failure).
std::optional<fts::programs::Program> make_model(const std::string& name) {
  for (const auto& m : kModels)
    if (name == m.name) return m.make();
  auto family = [&](std::string_view prefix) -> std::optional<std::size_t> {
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0)
      return std::nullopt;
    const std::string digits = name.substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos || digits.size() > 3)
      return std::nullopt;
    return std::stoul(digits);
  };
  if (auto n = family("dining-")) return fts::programs::dining(*n);
  if (auto n = family("ring-")) return fts::programs::ring_leader(*n);
  return std::nullopt;
}

int usage(std::ostream& out, int code) {
  out << "usage: mph-lint [options] [FORMULA...]\n"
         "  --spec FILE     lint a spec file (one LTL requirement per line, '#' comments)\n"
         "  --model NAME    lint a built-in model (--list-models)\n"
         "  --models        lint every built-in model\n"
         "  --check FORMULA model-check FORMULA against the --model (repeatable);\n"
         "                  prints a table of engine statistics per spec\n"
         "  --threads N     worker threads for --check batches (default 1)\n"
         "  --explore-threads N\n"
         "                  worker threads inside one emptiness search: parallel\n"
         "                  state-graph exploration, CNDFS nested DFS, parallel\n"
         "                  safety-prefix scan (docs/PARALLEL.md; default 1)\n"
         "  --budget-states N\n"
         "                  state cap per --check construction (default 200000); an\n"
         "                  exhausted check reports outcome budget-states (MPH-V004)\n"
         "  --budget-ms N   wall-clock budget for the whole --check batch in ms\n"
         "  --vacuity       analyze why requirements that hold do hold: polarity-directed\n"
         "                  mutation vacuity against the --model (MPH-Y001/Y002/Y003);\n"
         "                  requirements come from --check, --spec and positional formulas\n"
         "  --coverage      transition mutation coverage of the requirements against the\n"
         "                  --model (MPH-Y004): which transitions the spec actually pins\n"
         "  --no-dispatch   send every vacuity/coverage mutant through the full ω-product\n"
         "                  engines instead of the class-aware shortcuts (docs/VACUITY.md)\n"
         "  --dispatch      use class-aware dispatch for --check itself (engine column\n"
         "                  then reports safety-prefix / guarantee-dual where taken)\n"
         "  --absint        interval abstract interpretation of the --model's symbolic\n"
         "                  description (dining-N, ring-N): box invariant plus dead\n"
         "                  transitions (MPH-F010), tightened domains (MPH-F011) and\n"
         "                  wrapping effects (MPH-F012); --check then consults the\n"
         "                  exploration-free static prover first (engine 'static',\n"
         "                  0 states explored; docs/ABSINT.md)\n"
         "  --strict-unknown\n"
         "                  exit 1 when any verdict is unknown (budget exhausted:\n"
         "                  MPH-V004, MPH-Y005) even without error diagnostics\n"
         "  --classify      exact hierarchy classification via ΔΓ-normalization\n"
         "                  (MPH-N001/N002/N003) of the requirements from --check,\n"
         "                  --spec and positional formulas; prints a summary table\n"
         "  --normalize     --classify plus each requirement's hierarchy normal form\n"
         "  --normalize-steps N\n"
         "                  rewrite-step budget for ΔΓ-normalization (default\n"
         "                  unlimited); an exhausted run reports MPH-N003 and an\n"
         "                  unknown exact class\n"
         "  --subsume       pairwise requirement subsumption via Büchi language\n"
         "                  inclusion (MPH-S011/S012/S013) over the requirements from\n"
         "                  --check, --spec and positional formulas; --budget-states\n"
         "                  caps the per-direction inclusion product\n"
         "  --strict-class CLASS\n"
         "                  exit 1 unless every requirement is established in CLASS\n"
         "                  (safety, guarantee, obligation, recurrence, persistence,\n"
         "                  reactivity); refusals and budget stops fail the gate\n"
         "  --automata      additionally lint each requirement's compiled automaton\n"
         "  --json          machine-readable output\n"
         "  --no-checklist  suppress MPH-S007 hierarchy-checklist notes\n"
         "  --quiet         diagnostics only (no classification table)\n"
         "  --werror        exit 1 on warnings as well as errors\n"
         "  --list-codes    print the diagnostic code registry\n"
         "  --list-passes   print the pass registry\n"
         "  --list-models   print the built-in models\n";
  return code;
}

std::vector<std::string> read_spec_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open spec file: " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    auto last = line.find_last_not_of(" \t\r");
    lines.push_back(line.substr(first, last - first + 1));
  }
  return lines;
}

std::optional<core::PropertyClass> parse_class(const std::string& name) {
  using core::PropertyClass;
  static constexpr std::pair<const char*, PropertyClass> kClasses[] = {
      {"safety", PropertyClass::Safety},
      {"guarantee", PropertyClass::Guarantee},
      {"obligation", PropertyClass::Obligation},
      {"recurrence", PropertyClass::Recurrence},
      {"persistence", PropertyClass::Persistence},
      {"reactivity", PropertyClass::Reactivity},
  };
  for (const auto& [n, c] : kClasses)
    if (name == n) return c;
  return std::nullopt;
}

void print_classification_table(const analysis::SpecLintResult& result) {
  TextTable t({"requirement", "syntactic", "semantic", "live?"});
  for (const auto& item : result.items) {
    t.add_row({item.text, core::to_string(item.syntactic.lowest()),
               item.semantic ? core::to_string(item.semantic->lowest()) : "(not compiled)",
               item.semantic ? (item.semantic->liveness ? "yes" : "no") : "-"});
  }
  std::cout << t.to_string() << "\n";
  if (result.model && result.alphabet)
    std::cout << "the specification is satisfiable; a model: "
              << result.model->to_string(*result.alphabet) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> formulas;
  std::vector<std::string> spec_files;
  std::vector<std::string> model_names;
  std::vector<std::string> check_formulas;
  unsigned check_threads = 1;
  unsigned explore_threads = 1;
  std::size_t budget_states = 0;
  std::uint64_t budget_ms = 0;
  bool all_models = false, json = false, quiet = false, werror = false;
  bool lint_automata = false;
  bool vacuity = false, coverage = false, strict_unknown = false;
  bool classify_props = false;    // --classify: exact classes via normalization
  bool print_normal = false;      // --normalize: also print the normal forms
  bool subsume = false;           // --subsume: pairwise language inclusion
  std::optional<core::PropertyClass> strict_class;  // --strict-class gate
  bool dispatch_check = false;    // --dispatch: class-aware engines for --check
  bool dispatch_mutants = true;   // --no-dispatch: full ω-product for mutants
  bool absint = false;            // --absint: interval analysis + static prover
  analysis::AnalysisOptions options;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "mph-lint: " << flag << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // Strict numeric flags (src/support/parse_num.hpp): "abc", "1e9x", "-5"
    // and out-of-range values are usage errors (exit 2), never an uncaught
    // std::invalid_argument out of std::stoul and never a wrapped value.
    auto next_num = [&](const char* flag, std::uint64_t max) -> std::uint64_t {
      const std::string text = next(flag);
      if (auto v = parse_u64(text, max)) return *v;
      std::cerr << "mph-lint: " << flag << " needs a base-10 unsigned integer <= " << max
                << ", got '" << text << "'\n";
      std::exit(2);
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--spec") {
      spec_files.push_back(next("--spec"));
    } else if (arg == "--model") {
      model_names.push_back(next("--model"));
    } else if (arg == "--models") {
      all_models = true;
    } else if (arg == "--check") {
      check_formulas.push_back(next("--check"));
    } else if (arg == "--threads") {
      check_threads = static_cast<unsigned>(next_num("--threads", 1024));
    } else if (arg == "--explore-threads") {
      explore_threads = static_cast<unsigned>(next_num("--explore-threads", 1024));
    } else if (arg == "--budget-states") {
      budget_states = next_num("--budget-states", UINT64_MAX);
    } else if (arg == "--budget-ms") {
      budget_ms = next_num("--budget-ms", UINT64_MAX);
    } else if (arg == "--vacuity") {
      vacuity = true;
    } else if (arg == "--coverage") {
      coverage = true;
    } else if (arg == "--no-dispatch") {
      dispatch_mutants = false;
    } else if (arg == "--dispatch") {
      dispatch_check = true;
    } else if (arg == "--absint") {
      absint = true;
    } else if (arg == "--strict-unknown") {
      strict_unknown = true;
    } else if (arg == "--classify") {
      classify_props = true;
    } else if (arg == "--normalize") {
      print_normal = true;
    } else if (arg == "--subsume") {
      subsume = true;
    } else if (arg == "--normalize-steps") {
      options.normalize.normalize.budget =
          Budget().with_state_cap(next_num("--normalize-steps", UINT64_MAX));
    } else if (arg == "--strict-class") {
      std::string cname = next("--strict-class");
      strict_class = parse_class(cname);
      if (!strict_class) {
        std::cerr << "mph-lint: unknown class '" << cname
                  << "' (safety, guarantee, obligation, recurrence, persistence, "
                     "reactivity)\n";
        return 2;
      }
    } else if (arg == "--automata") {
      lint_automata = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--no-checklist") {
      options.spec.checklist = false;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--list-codes") {
      TextTable t({"code", "severity", "finding"});
      for (const auto& info : analysis::code_registry())
        t.add_row({std::string(info.code), std::string(analysis::to_string(info.severity)),
                   std::string(info.title)});
      std::cout << t.to_string();
      return 0;
    } else if (arg == "--list-passes") {
      TextTable t({"pass", "description"});
      for (const auto& pass : analysis::registered_passes())
        t.add_row({std::string(pass.id), std::string(pass.description)});
      std::cout << t.to_string();
      return 0;
    } else if (arg == "--list-models") {
      for (const auto& m : kModels) std::cout << m.name << "\n";
      std::cout << "dining-N (N=2..12)\nring-N (N=2..10)\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mph-lint: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    } else {
      formulas.push_back(arg);
    }
  }
  if (all_models)
    for (const auto& m : kModels) model_names.emplace_back(m.name);
  if (formulas.empty() && spec_files.empty() && model_names.empty())
    return usage(std::cerr, 2);
  if (!check_formulas.empty() && model_names.size() != 1) {
    std::cerr << "mph-lint: --check needs exactly one --model\n";
    return 2;
  }
  if (absint && model_names.size() != 1) {
    std::cerr << "mph-lint: --absint needs exactly one --model\n";
    return 2;
  }
  if ((vacuity || coverage) && model_names.size() != 1) {
    std::cerr << "mph-lint: --vacuity/--coverage need exactly one --model\n";
    return 2;
  }
  if ((vacuity || coverage) && check_formulas.empty() && spec_files.empty() &&
      formulas.empty()) {
    std::cerr << "mph-lint: --vacuity/--coverage need requirements "
                 "(--check, --spec or positional formulas)\n";
    return 2;
  }
  const bool classify_run = classify_props || print_normal || strict_class.has_value();
  if (classify_run && check_formulas.empty() && spec_files.empty() && formulas.empty()) {
    std::cerr << "mph-lint: --classify/--normalize/--strict-class need requirements "
                 "(--check, --spec or positional formulas)\n";
    return 2;
  }
  if (subsume && check_formulas.empty() && spec_files.empty() && formulas.empty()) {
    std::cerr << "mph-lint: --subsume needs requirements "
                 "(--check, --spec or positional formulas)\n";
    return 2;
  }

  analysis::DiagnosticEngine engine;
  bool unknown_seen = false;   // any verdict the budget left undecided
  std::size_t strict_class_failures = 0;  // requirements the --strict-class gate rejects
  std::string extra_json;      // "vacuity"/"coverage" objects spliced into --json
  try {
    // Models first, then spec files, then command-line formulas (one shared
    // engine: subjects keep the findings apart).
    for (const auto& name : model_names) {
      auto model = make_model(name);
      if (!model) {
        std::cerr << "mph-lint: unknown model '" << name << "' (see --list-models)\n";
        return 2;
      }
      auto program = std::move(*model);
      std::optional<fts::FtsSpec> sym;  // symbolic description, --absint only
      if (absint) {
        sym = fts::find_symbolic_model(name);
        if (!sym) {
          std::cerr << "mph-lint: model '" << name
                    << "' has no symbolic description (--absint supports the "
                       "dining-N and ring-N families)\n";
          return 2;
        }
        // Analyze and check the *same* system: rebuild it from the symbolic
        // description so the box invariant, the static prover and the
        // exploration engines all talk about identical states and atoms.
        program.system = sym->build();
        program.atoms = sym->atoms();
      }
      analysis::run_passes(analysis::Subject::of(program.system, "model '" + name + "'"),
                           engine, options);

      if (sym) {
        const auto ar = analysis::lint_absint(*sym, engine);
        if (!json && !quiet) {
          TextTable vt({"variable", "domain", "invariant", "tightened"});
          for (const auto& v : ar.invariants)
            vt.add_row({v.name,
                        "[" + std::to_string(v.dom_lo) + ", " + std::to_string(v.dom_hi) +
                            "]",
                        "[" + std::to_string(v.inv.lo) + ", " + std::to_string(v.inv.hi) +
                            "]",
                        v.tightened ? "yes" : "no"});
          TextTable tt({"transition", "verdict", "may wrap"});
          for (const auto& tv : ar.transitions) {
            std::string wraps = "-";
            if (tv.may_wrap) {
              wraps.clear();
              for (const auto& w : tv.wrap_vars) {
                if (!wraps.empty()) wraps += ", ";
                wraps += w;
              }
            }
            tt.add_row({tv.name, tv.dead ? "DEAD" : "live", wraps});
          }
          std::cout << "== interval analysis of model '" << name << "' ==\n"
                    << vt.to_string() << tt.to_string() << "fixpoint in " << ar.iterations
                    << " round(s)" << (ar.widened ? ", widened" : "")
                    << (ar.narrowed ? ", narrowed" : "") << "; " << ar.dead_count()
                    << " dead, " << ar.tightened_count() << " tightened, "
                    << ar.wrap_count() << " wrapping\n\n";
        }
        // `, "absint": {"model": ..., <to_json body>}` — to_json emits a
        // complete object, so splice the model name in after its '{'.
        extra_json += ", \"absint\": {\"model\": \"" + analysis::json_escape(name) +
                      "\", " + analysis::to_json(ar).substr(1);
      }

      if (!check_formulas.empty()) {
        std::vector<ltl::Formula> specs;
        for (const auto& text : check_formulas) specs.push_back(ltl::parse_formula(text));
        fts::CheckOptions copts;
        copts.threads = check_threads;
        copts.explore_threads = explore_threads;
        copts.diagnostics = &engine;
        copts.class_dispatch = dispatch_check;
        if (sym) copts.static_prover = analysis::make_static_prover(*sym);
        if (budget_states > 0) copts.budget.with_state_cap(budget_states);
        if (budget_ms > 0)
          copts.budget.with_deadline_after(std::chrono::milliseconds(budget_ms));
        auto results = fts::check_all(program.system, specs, program.atoms, copts);
        for (const auto& r : results)
          if (!is_complete(r.outcome)) unknown_seen = true;
        if (!json && !quiet) {
          TextTable t({"spec", "verdict", "outcome", "engine", "threads", "automaton",
                       "product", "bound", "search s"});
          for (std::size_t i = 0; i < results.size(); ++i) {
            const auto& s = results[i].stats;
            std::ostringstream secs;
            secs.precision(3);
            secs << std::fixed << s.search_seconds;
            const char* verdict = !is_complete(results[i].outcome) ? "unknown"
                                  : results[i].holds               ? "holds"
                                                                   : "VIOLATED";
            t.add_row({check_formulas[i], verdict,
                       std::string(to_string(results[i].outcome)),
                       std::string(to_string(s.engine)) + (s.nba_fallback ? " (NBA)" : ""),
                       std::to_string(s.threads_used), std::to_string(s.automaton_states),
                       std::to_string(s.product_states), std::to_string(s.product_bound),
                       secs.str()});
          }
          std::cout << "== check against model '" << name << "' ("
                    << (results.empty() ? 0 : results[0].stats.state_graph_nodes)
                    << " states) ==\n"
                    << t.to_string() << "\n";
        }
      }

      if (vacuity || coverage) {
        // Requirements for the verdict-aware passes: --check formulas, spec
        // file lines, then positional formulas, deduplicated by text.
        std::vector<std::string> req_texts;
        std::set<std::string> seen_reqs;
        auto add_req = [&](const std::string& text) {
          if (seen_reqs.insert(text).second) req_texts.push_back(text);
        };
        for (const auto& text : check_formulas) add_req(text);
        for (const auto& path : spec_files)
          for (const auto& line : read_spec_file(path)) add_req(line);
        for (const auto& text : formulas) add_req(text);
        std::vector<ltl::Formula> reqs;
        for (const auto& text : req_texts) reqs.push_back(ltl::parse_formula(text));

        fts::CheckOptions copts;
        copts.threads = check_threads;
        copts.explore_threads = explore_threads;
        if (budget_states > 0) copts.budget.with_state_cap(budget_states);
        if (budget_ms > 0)
          copts.budget.with_deadline_after(std::chrono::milliseconds(budget_ms));

        if (vacuity) {
          analysis::VacuityOptions vopts;
          vopts.check = copts;
          vopts.class_dispatch = dispatch_mutants;
          const auto vr =
              analysis::analyze_vacuity(program.system, reqs, program.atoms, engine, vopts);
          for (const auto& rv : vr.requirements)
            if (rv.verdict == analysis::RequirementVacuity::Verdict::Unknown)
              unknown_seen = true;
          if (!json && !quiet) {
            TextTable t({"requirement", "verdict", "mutants", "engines", "note"});
            for (const auto& rv : vr.requirements) {
              std::size_t checked = 0;
              std::map<std::string, std::size_t> tally;
              for (const auto& mc : rv.mutants) {
                if (mc.engine != "skipped") ++checked;
                ++tally[mc.engine];
              }
              std::string engines;
              for (const auto& [ename, n] : tally) {
                if (ename == "skipped") continue;
                if (!engines.empty()) engines += ", ";
                engines += std::to_string(n) + " " + ename;
              }
              std::string note;
              if (rv.antecedent_failure)
                note = "antecedent unreachable (MPH-Y002)";
              else if (rv.witness)
                note = "witness: prefix " + std::to_string(rv.witness->prefix.size()) +
                       ", loop " + std::to_string(rv.witness->loop.size());
              else if (rv.verdict == analysis::RequirementVacuity::Verdict::Unknown)
                note = "budget exhausted";
              t.add_row({rv.text, std::string(to_string(rv.verdict)),
                         std::to_string(checked) + "/" + std::to_string(rv.mutants.size()),
                         engines.empty() ? "-" : engines, note});
            }
            const auto& st = vr.stats;
            std::cout << "== vacuity against model '" << name << "' ==\n"
                      << t.to_string() << "mutants: " << st.mutants_checked << " checked, "
                      << st.mutants_skipped << " skipped; engines: safety-prefix "
                      << st.safety_prefix << ", guarantee-dual " << st.guarantee_dual
                      << ", nested-DFS " << st.nested_dfs << ", SCC " << st.scc
                      << ", constant " << st.constant << "; unknown " << st.unknown << "\n\n";
            for (const auto& rv : vr.requirements)
              if (rv.witness)
                std::cout << "interesting witness for '" << rv.text << "':\n"
                          << rv.witness->to_string(program.system) << "\n";
          }
          std::ostringstream vj;
          using analysis::json_escape;
          vj << ", \"vacuity\": {\"model\": \"" << json_escape(name)
             << "\", \"requirements\": [";
          for (std::size_t i = 0; i < vr.requirements.size(); ++i) {
            const auto& rv = vr.requirements[i];
            if (i) vj << ", ";
            vj << "{\"text\": \"" << json_escape(rv.text) << "\", \"verdict\": \""
               << to_string(rv.verdict) << "\", \"holds\": "
               << (rv.original.holds ? "true" : "false") << ", \"outcome\": \""
               << to_string(rv.original.outcome) << "\", \"antecedent_failure\": "
               << (rv.antecedent_failure ? "true" : "false") << ", \"mutants\": [";
            for (std::size_t j = 0; j < rv.mutants.size(); ++j) {
              const auto& mc = rv.mutants[j];
              if (j) vj << ", ";
              vj << "{\"occurrence\": \"" << json_escape(mc.occurrence)
                 << "\", \"polarity\": \"" << to_string(mc.polarity)
                 << "\", \"replacement\": \"" << json_escape(mc.replacement)
                 << "\", \"text\": \"" << json_escape(mc.text) << "\", \"engine\": \""
                 << json_escape(mc.engine) << "\", \"outcome\": \""
                 << to_string(mc.outcome) << "\", \"holds\": "
                 << (mc.holds ? "true" : "false") << "}";
            }
            vj << "]";
            if (rv.witness)
              vj << ", \"witness\": {\"prefix\": " << rv.witness->prefix.size()
                 << ", \"loop\": " << rv.witness->loop.size() << "}";
            vj << "}";
          }
          const auto& st = vr.stats;
          vj << "], \"stats\": {\"mutants_checked\": " << st.mutants_checked
             << ", \"mutants_skipped\": " << st.mutants_skipped
             << ", \"safety_prefix\": " << st.safety_prefix
             << ", \"guarantee_dual\": " << st.guarantee_dual
             << ", \"nested_dfs\": " << st.nested_dfs << ", \"scc\": " << st.scc
             << ", \"constant\": " << st.constant << ", \"unknown\": " << st.unknown
             << "}}";
          extra_json += vj.str();
        }

        if (coverage) {
          analysis::CoverageOptions kopts;
          kopts.check = copts;
          kopts.class_dispatch = dispatch_mutants;
          const auto cr =
              analysis::analyze_coverage(program.system, reqs, program.atoms, engine, kopts);
          if (!is_complete(cr.outcome) || cr.unknown > 0) unknown_seen = true;
          std::ostringstream pct;
          pct.precision(1);
          pct << std::fixed << cr.percent_covered;
          if (!json && !quiet) {
            TextTable t({"transition", "reachable", "covered"});
            for (const auto& tc : cr.transitions)
              t.add_row({tc.name, tc.reachable ? "yes" : "no",
                         !tc.reachable ? "-"
                         : tc.covered  ? "yes"
                         : tc.unknown  ? "unknown"
                                       : "NO"});
            std::cout << "== coverage against model '" << name << "' ==\n"
                      << t.to_string() << "coverage: " << cr.covered << " of "
                      << cr.reachable << " reachable transition(s) covered (" << pct.str()
                      << "%)";
            if (cr.unknown > 0) std::cout << ", " << cr.unknown << " unknown";
            std::cout << "\n\n";
          }
          std::ostringstream cj;
          using analysis::json_escape;
          cj << ", \"coverage\": {\"model\": \"" << json_escape(name)
             << "\", \"transitions\": [";
          for (std::size_t i = 0; i < cr.transitions.size(); ++i) {
            const auto& tc = cr.transitions[i];
            if (i) cj << ", ";
            cj << "{\"transition\": " << tc.transition << ", \"name\": \""
               << json_escape(tc.name) << "\", \"reachable\": "
               << (tc.reachable ? "true" : "false") << ", \"covered\": "
               << (tc.covered ? "true" : "false") << ", \"unknown\": "
               << (tc.unknown ? "true" : "false") << "}";
          }
          cj << "], \"reachable\": " << cr.reachable << ", \"covered\": " << cr.covered
             << ", \"unknown\": " << cr.unknown << ", \"percent_covered\": " << pct.str()
             << ", \"outcome\": \"" << to_string(cr.outcome) << "\"}";
          extra_json += cj.str();
        }
      }
    }

    auto lint_formula_list = [&](const std::vector<std::string>& texts,
                                 const std::string& label) {
      auto result = analysis::lint_spec_texts(texts, engine, options.spec);
      if (!json && !quiet) {
        if (!label.empty()) std::cout << "== " << label << " ==\n";
        print_classification_table(result);
      }
      if (lint_automata && result.alphabet) {
        for (std::size_t i = 0; i < texts.size(); ++i) {
          try {
            auto m = ltl::compile(ltl::parse_formula(texts[i]), *result.alphabet);
            analysis::lint_automaton(m, "automaton of '" + texts[i] + "'", engine);
          } catch (const std::invalid_argument&) {
            // MPH-S008 already reported by the spec pass.
          }
        }
      }
    };
    for (const auto& path : spec_files) lint_formula_list(read_spec_file(path), path);
    if (!formulas.empty()) lint_formula_list(formulas, "");

    if (classify_run) {
      // Requirements for the exact-classification pass: --check formulas,
      // spec file lines, then positional formulas, deduplicated by text
      // (same collection order as --vacuity/--coverage).
      std::vector<std::string> req_texts;
      std::set<std::string> seen_reqs;
      auto add_req = [&](const std::string& text) {
        if (seen_reqs.insert(text).second) req_texts.push_back(text);
      };
      for (const auto& text : check_formulas) add_req(text);
      for (const auto& path : spec_files)
        for (const auto& line : read_spec_file(path)) add_req(line);
      for (const auto& text : formulas) add_req(text);
      std::vector<ltl::Formula> reqs;
      for (const auto& text : req_texts) reqs.push_back(ltl::parse_formula(text));

      const auto nr = analysis::lint_normalize(reqs, engine, options.normalize);
      if (!json && !quiet) {
        TextTable t({"requirement", "syntactic", "exact", "via", "outcome", "steps"});
        for (const auto& item : nr.items)
          t.add_row({item.text, core::to_string(item.syntactic.lowest()),
                     item.exact ? core::to_string(item.exact->lowest())
                     : is_complete(item.outcome) ? "(refused)"
                                                 : "unknown",
                     !item.exact ? "-"
                     : item.exact_source == ltl::ExactClass::Source::NbaSemantics
                         ? "nba"
                         : "normal-form",
                     std::string(to_string(item.outcome)), std::to_string(item.steps)});
        std::cout << "== exact classification (ΔΓ-normalization) ==\n"
                  << t.to_string() << "exact " << nr.exact_count << " (" << nr.nba_count
                  << " via NBA closure tests), refused " << nr.refused_count
                  << ", budget-stopped " << nr.budget_count << "\n\n";
        if (print_normal) {
          for (const auto& item : nr.items)
            if (item.normal_form)
              std::cout << "normal form of '" << item.text << "':\n  " << *item.normal_form
                        << "\n";
          std::cout << "\n";
        }
      }
      std::ostringstream nj;
      using analysis::json_escape;
      nj << ", \"classify\": {\"requirements\": [";
      for (std::size_t i = 0; i < nr.items.size(); ++i) {
        const auto& item = nr.items[i];
        if (i) nj << ", ";
        nj << "{\"text\": \"" << json_escape(item.text) << "\", \"syntactic\": \""
           << core::to_string(item.syntactic.lowest()) << "\", \"exact\": ";
        if (item.exact)
          nj << "\"" << core::to_string(item.exact->lowest()) << "\", \"exact_source\": \""
             << (item.exact_source == ltl::ExactClass::Source::NbaSemantics ? "nba"
                                                                            : "normal-form")
             << "\"";
        else
          nj << "null";
        nj << ", \"outcome\": \"" << to_string(item.outcome)
           << "\", \"steps\": " << item.steps;
        if (print_normal && item.normal_form)
          nj << ", \"normal_form\": \"" << json_escape(*item.normal_form) << "\"";
        nj << "}";
      }
      nj << "], \"exact\": " << nr.exact_count << ", \"refused\": " << nr.refused_count
         << ", \"budget\": " << nr.budget_count << "}";
      extra_json += nj.str();

      if (strict_class) {
        // The gate is sound: membership must be *established* (exact class
        // when normalization landed, otherwise the syntactic claims, which
        // under-approximate). Refusals and budget stops therefore fail.
        for (const auto& item : nr.items) {
          if (item.best().is(*strict_class)) continue;
          ++strict_class_failures;
          if (!json)
            std::cerr << "mph-lint: '" << item.text << "' not established in class "
                      << core::to_string(*strict_class) << " ("
                      << (item.exact ? "exact: " + core::to_string(item.exact->lowest())
                                     : "class unknown")
                      << ")\n";
        }
      }
    }

    if (subsume) {
      // Requirements for the subsumption pass: same collection order and
      // dedup as --classify/--vacuity.
      std::vector<std::string> req_texts;
      std::set<std::string> seen_reqs;
      auto add_req = [&](const std::string& text) {
        if (seen_reqs.insert(text).second) req_texts.push_back(text);
      };
      for (const auto& text : check_formulas) add_req(text);
      for (const auto& path : spec_files)
        for (const auto& line : read_spec_file(path)) add_req(line);
      for (const auto& text : formulas) add_req(text);
      std::vector<ltl::Formula> reqs;
      for (const auto& text : req_texts) reqs.push_back(ltl::parse_formula(text));

      options.subsume.enabled = true;
      if (budget_states > 0)
        options.subsume.budget = Budget().with_state_cap(budget_states);
      const auto sr = analysis::lint_subsume(reqs, engine, options.subsume);
      if (sr.unknown_pairs > 0) unknown_seen = true;
      if (!json && !quiet) {
        TextTable t({"stronger", "weaker", "relation"});
        for (const auto& p : sr.pairs)
          t.add_row({req_texts[p.stronger], req_texts[p.weaker],
                     p.equivalent ? "equivalent" : "implies"});
        std::cout << "== subsumption (Büchi language inclusion) ==\n"
                  << t.to_string() << "checked " << sr.checked_pairs
                  << " direction(s), " << sr.unknown_pairs << " undecided\n\n";
      }
      std::ostringstream sj;
      using analysis::json_escape;
      sj << ", \"subsume\": {\"pairs\": [";
      for (std::size_t i = 0; i < sr.pairs.size(); ++i) {
        const auto& p = sr.pairs[i];
        if (i) sj << ", ";
        sj << "{\"stronger\": \"" << json_escape(req_texts[p.stronger])
           << "\", \"weaker\": \"" << json_escape(req_texts[p.weaker])
           << "\", \"equivalent\": " << (p.equivalent ? "true" : "false") << "}";
      }
      sj << "], \"checked\": " << sr.checked_pairs
         << ", \"unknown\": " << sr.unknown_pairs << "}";
      extra_json += sj.str();
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "mph-lint: " << e.what() << "\n";
    return 2;
  } catch (const std::runtime_error& e) {
    std::cerr << "mph-lint: " << e.what() << "\n";
    return 2;
  }

  if (json) {
    // Splice the vacuity/coverage objects into the diagnostics document
    // (validated by scripts/validate_lint_report.py).
    std::string doc = engine.to_json();
    if (!extra_json.empty()) {
      doc.pop_back();  // the document's closing '}'
      doc += extra_json + "}";
    }
    std::cout << doc << "\n";
  } else {
    std::cout << engine.to_text();
  }

  if (engine.has_errors()) return 1;
  if (werror && engine.count(analysis::Severity::Warning) > 0) return 1;
  if (strict_unknown && unknown_seen) return 1;
  if (strict_class_failures > 0) return 1;
  return 0;
}
