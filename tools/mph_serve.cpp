// mph-serve — the cached, batched checking daemon (docs/SERVE.md).
//
//   mph-serve                               serve line-delimited JSON on stdin/stdout
//   mph-serve --listen 7411                 serve one client at a time on 127.0.0.1:7411
//   mph-serve --max-budget-states 50000     ceiling on any request's state cap
//   mph-serve --max-budget-ms 2000          ceiling on any request's wall-clock budget
//   mph-serve --max-threads 4               ceiling on requested worker threads
//   mph-serve --no-cache                    disable the verdict cache (debugging)
//
// Protocol: one JSON request per line, one JSON response per line. Ops:
// parse, classify, check, vacuity, invalidate, stats (see docs/SERVE.md).
// Malformed JSON gets {"ok": false, "error": {"code": "bad-json", ...}} —
// the daemon never dies on input. On shutdown (EOF, SIGINT/SIGTERM) the
// stats dump goes to stderr; SIGUSR1 requests a dump between requests
// without stopping.
//
// Exit status: 0 = clean shutdown, 2 = usage error or transport failure.
#include <csignal>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "src/serve/server.hpp"
#include "src/support/parse_num.hpp"

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace mph;

/// Requests beyond this are rejected (bad-request), bounding daemon memory
/// against a hostile or broken client.
constexpr std::size_t kMaxLineBytes = 4u << 20;

volatile std::sig_atomic_t g_shutdown = 0;
volatile std::sig_atomic_t g_dump_stats = 0;

void on_terminate(int) { g_shutdown = 1; }
void on_usr1(int) { g_dump_stats = 1; }

int usage(std::ostream& out, int code) {
  out << "usage: mph-serve [options]\n"
         "  --stdio               serve stdin/stdout (default)\n"
         "  --listen PORT         serve 127.0.0.1:PORT, one client at a time\n"
         "  --max-budget-states N ceiling on any request's state cap (default 200000)\n"
         "  --max-budget-ms N     ceiling on any request's wall-clock budget in ms\n"
         "                        (default 0 = requests may run undeadlined)\n"
         "  --max-threads N       ceiling on requested threads/explore_threads (default 8)\n"
         "  --no-cache            disable the verdict cache\n"
         "  --no-subsume          disable cross-spec verdict sharing via language\n"
         "                        inclusion (docs/SERVE.md)\n"
         "  --subsume-states N    state cap per implication check (default 20000)\n"
         "  --quiet               no stats dump on shutdown\n";
  return code;
}

/// Oversized-line guard: the response every too-long request line gets.
std::string line_too_long() {
  return serve::JsonWriter()
      .field("ok", false)
      .field("error", serve::JsonWriter()
                          .field("code", "bad-request")
                          .field("message", "request line exceeds the daemon's size cap")
                          .build())
      .build()
      .dump();
}

void maybe_dump(const serve::Server& server) {
  if (!g_dump_stats) return;
  g_dump_stats = 0;
  std::cerr << server.stats_text();
}

int serve_stdio(serve::Server& server, bool quiet) {
  std::string line;
  while (!g_shutdown && std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::cout << (line.size() > kMaxLineBytes ? line_too_long() : server.handle_line(line))
              << "\n"
              << std::flush;
    maybe_dump(server);
  }
  if (!quiet) std::cerr << server.stats_text();
  return 0;
}

#ifndef _WIN32
int serve_tcp(serve::Server& server, std::uint16_t port, bool quiet) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) {
    std::cerr << "mph-serve: cannot create socket\n";
    return 2;
  }
  const int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listener, 4) < 0) {
    std::cerr << "mph-serve: cannot listen on 127.0.0.1:" << port << "\n";
    ::close(listener);
    return 2;
  }
  std::cerr << "mph-serve: listening on 127.0.0.1:" << port << "\n";

  while (!g_shutdown) {
    const int client = ::accept(listener, nullptr, nullptr);
    if (client < 0) {
      if (g_shutdown) break;
      maybe_dump(server);
      continue;  // EINTR (e.g. SIGUSR1) or a transient accept failure
    }
    std::string buffer;
    char chunk[4096];
    for (;;) {
      maybe_dump(server);
      const auto got = ::recv(client, chunk, sizeof(chunk), 0);
      if (got <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(got));
      std::size_t eol;
      while ((eol = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        std::string response =
            (line.size() > kMaxLineBytes ? line_too_long() : server.handle_line(line)) +
            "\n";
        std::size_t sent = 0;
        while (sent < response.size()) {
          const auto n = ::send(client, response.data() + sent, response.size() - sent, 0);
          if (n <= 0) break;
          sent += static_cast<std::size_t>(n);
        }
      }
      if (buffer.size() > kMaxLineBytes) break;  // unterminated oversized line
    }
    ::close(client);
  }
  ::close(listener);
  if (!quiet) std::cerr << server.stats_text();
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  serve::ServerConfig config;
  bool quiet = false;
  std::optional<std::uint16_t> port;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "mph-serve: " << flag << " needs an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    auto next_num = [&](const char* flag, std::uint64_t max) -> std::uint64_t {
      const std::string text = next(flag);
      if (auto v = parse_u64(text, max)) return *v;
      std::cerr << "mph-serve: " << flag << " needs a base-10 unsigned integer <= " << max
                << ", got '" << text << "'\n";
      std::exit(2);
    };
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--stdio") {
      port.reset();
    } else if (arg == "--listen") {
      port = static_cast<std::uint16_t>(next_num("--listen", 65535));
    } else if (arg == "--max-budget-states") {
      config.max_budget_states =
          static_cast<std::size_t>(next_num("--max-budget-states", UINT64_MAX));
    } else if (arg == "--max-budget-ms") {
      config.max_budget_ms = next_num("--max-budget-ms", UINT64_MAX);
    } else if (arg == "--max-threads") {
      config.max_threads = static_cast<unsigned>(next_num("--max-threads", 1024));
    } else if (arg == "--no-cache") {
      config.cache = false;
    } else if (arg == "--no-subsume") {
      config.subsume_sharing = false;
    } else if (arg == "--subsume-states") {
      config.subsume_states =
          static_cast<std::size_t>(next_num("--subsume-states", UINT64_MAX));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::cerr << "mph-serve: unknown option " << arg << "\n";
      return usage(std::cerr, 2);
    }
  }

  std::signal(SIGINT, on_terminate);
  std::signal(SIGTERM, on_terminate);
#ifdef SIGUSR1
  std::signal(SIGUSR1, on_usr1);
#endif

  serve::Server server(config);
#ifndef _WIN32
  if (port) return serve_tcp(server, *port, quiet);
#else
  if (port) {
    std::cerr << "mph-serve: --listen is not supported on this platform\n";
    return 2;
  }
#endif
  return serve_stdio(server, quiet);
}
